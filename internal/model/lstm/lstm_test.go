package lstm

import (
	"math"
	"testing"

	"fedprox/internal/data"
	"fedprox/internal/frand"
)

func smallModel() *Model {
	return New(Config{Vocab: 7, Embed: 3, Hidden: 4, Layers: 2, Classes: 5})
}

func randSeqBatch(rng *frand.Source, n, seqLen, vocab, classes int) []data.Example {
	out := make([]data.Example, n)
	for i := range out {
		seq := make([]int, seqLen)
		for t := range seq {
			seq[t] = rng.Intn(vocab)
		}
		out[i] = data.Example{Seq: seq, Y: rng.Intn(classes)}
	}
	return out
}

func TestNumParamsLayout(t *testing.T) {
	m := smallModel()
	// E: 7*3; layer0: 4*4*3 + 4*4*4 + 4*4; layer1: 4*4*4 + 4*4*4 + 4*4;
	// head: 5*4 + 5.
	want := 21 + (48 + 64 + 16) + (64 + 64 + 16) + 20 + 5
	if got := m.NumParams(); got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	bad := []Config{
		{Vocab: 1, Embed: 2, Hidden: 2, Layers: 1, Classes: 2},
		{Vocab: 5, Embed: 0, Hidden: 2, Layers: 1, Classes: 2},
		{Vocab: 5, Embed: 2, Hidden: 0, Layers: 1, Classes: 2},
		{Vocab: 5, Embed: 2, Hidden: 2, Layers: 0, Classes: 2},
		{Vocab: 5, Embed: 2, Hidden: 2, Layers: 1, Classes: 1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: New(%+v) did not panic", i, cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestForgetGateBiasInit(t *testing.T) {
	m := smallModel()
	w := m.InitParams(frand.New(3))
	H := m.cfg.Hidden
	for l, lo := range m.layers {
		for j := 0; j < H; j++ {
			if got := w[lo.b+H+j]; got != 1 {
				t.Fatalf("layer %d forget bias[%d] = %g, want 1", l, j, got)
			}
			if got := w[lo.b+j]; got != 0 {
				t.Fatalf("layer %d input bias[%d] = %g, want 0", l, j, got)
			}
		}
	}
}

// TestGradMatchesNumerical is the load-bearing test of the BPTT
// implementation: every coordinate of the analytic gradient must match
// central finite differences.
func TestGradMatchesNumerical(t *testing.T) {
	rng := frand.New(17)
	m := smallModel()
	batch := randSeqBatch(rng, 3, 6, m.cfg.Vocab, m.cfg.Classes)
	w := m.InitParams(rng)
	grad := make([]float64, m.NumParams())
	m.Grad(grad, w, batch)

	const h = 1e-5
	maxRel := 0.0
	for i := 0; i < m.NumParams(); i++ {
		orig := w[i]
		w[i] = orig + h
		up := m.Loss(w, batch)
		w[i] = orig - h
		down := m.Loss(w, batch)
		w[i] = orig
		num := (up - down) / (2 * h)
		diff := math.Abs(num - grad[i])
		rel := diff / (1 + math.Abs(num))
		if rel > maxRel {
			maxRel = rel
		}
		if rel > 2e-4 {
			t.Fatalf("grad[%d] = %g, numerical %g (rel %g)", i, grad[i], num, rel)
		}
	}
	t.Logf("max relative gradient error: %g", maxRel)
}

func TestGradReturnsLoss(t *testing.T) {
	rng := frand.New(19)
	m := smallModel()
	batch := randSeqBatch(rng, 4, 5, m.cfg.Vocab, m.cfg.Classes)
	w := m.InitParams(rng)
	grad := make([]float64, m.NumParams())
	gl := m.Grad(grad, w, batch)
	l := m.Loss(w, batch)
	if math.Abs(gl-l) > 1e-12 {
		t.Fatalf("Grad loss %g != Loss %g", gl, l)
	}
}

func TestVariableSequenceLengths(t *testing.T) {
	rng := frand.New(23)
	m := smallModel()
	// Mixed lengths in one batch exercise the trace-reuse path.
	batch := []data.Example{
		randSeqBatch(rng, 1, 9, m.cfg.Vocab, m.cfg.Classes)[0],
		randSeqBatch(rng, 1, 3, m.cfg.Vocab, m.cfg.Classes)[0],
		randSeqBatch(rng, 1, 7, m.cfg.Vocab, m.cfg.Classes)[0],
	}
	w := m.InitParams(rng)
	grad := make([]float64, m.NumParams())
	loss := m.Grad(grad, w, batch)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss = %g", loss)
	}
	// Mean of per-example losses must equal batch loss.
	sum := 0.0
	for _, ex := range batch {
		sum += m.Loss(w, []data.Example{ex})
	}
	if math.Abs(sum/3-loss) > 1e-12 {
		t.Fatalf("batch loss %g != mean of singles %g", loss, sum/3)
	}
}

func TestEmptyBatch(t *testing.T) {
	m := smallModel()
	w := m.InitParams(frand.New(1))
	grad := make([]float64, m.NumParams())
	grad[5] = 42
	if l := m.Grad(grad, w, nil); l != 0 {
		t.Fatalf("Grad(empty) = %g, want 0", l)
	}
	if grad[5] != 0 {
		t.Fatal("Grad(empty) did not zero the buffer")
	}
}

// TestLearnsMajorityToken checks end-to-end learnability: sequences whose
// label is determined by their dominant token should be fit by a few
// hundred SGD steps.
func TestLearnsMajorityToken(t *testing.T) {
	rng := frand.New(29)
	m := New(Config{Vocab: 4, Embed: 4, Hidden: 8, Layers: 1, Classes: 2})
	var batch []data.Example
	for i := 0; i < 60; i++ {
		y := i % 2
		seq := make([]int, 6)
		for t := range seq {
			if rng.Bernoulli(0.8) {
				seq[t] = y // token identity leaks the label
			} else {
				seq[t] = 2 + rng.Intn(2)
			}
		}
		batch = append(batch, data.Example{Seq: seq, Y: y})
	}
	w := m.InitParams(rng)
	grad := make([]float64, m.NumParams())
	first := m.Loss(w, batch)
	for step := 0; step < 300; step++ {
		m.Grad(grad, w, batch)
		for i := range w {
			w[i] -= 0.5 * grad[i]
		}
	}
	last := m.Loss(w, batch)
	if last > first/2 {
		t.Fatalf("loss barely moved: %g -> %g", first, last)
	}
	correct := 0
	for _, ex := range batch {
		if m.Predict(w, ex) == ex.Y {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(batch)); acc < 0.9 {
		t.Fatalf("training accuracy = %g, want >= 0.9", acc)
	}
}

func TestDeterministicForward(t *testing.T) {
	rng := frand.New(31)
	m := smallModel()
	batch := randSeqBatch(rng, 2, 5, m.cfg.Vocab, m.cfg.Classes)
	w := m.InitParams(rng)
	l1 := m.Loss(w, batch)
	l2 := m.Loss(w, batch)
	if l1 != l2 {
		t.Fatalf("Loss not deterministic: %g vs %g", l1, l2)
	}
}

func TestForDatasetShapes(t *testing.T) {
	fed := &data.Federated{
		Name: "seq", NumClasses: 3, VocabSize: 11, SeqLen: 4,
		Shards: []*data.Shard{{Train: []data.Example{{Seq: []int{0, 1, 2, 3}, Y: 0}}}},
	}
	m := ForDataset(fed, 5, 6, 2)
	if m.Config().Vocab != 11 || m.Config().Classes != 3 {
		t.Fatalf("ForDataset shape mismatch: %+v", m.Config())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ForDataset on dense dataset did not panic")
		}
	}()
	ForDataset(&data.Federated{FeatureDim: 5, NumClasses: 2}, 2, 2, 1)
}
