// Package lstm implements the paper's non-convex workloads: a learned
// embedding feeding a stack of LSTM layers and a dense softmax head, with
// a full manual backward pass (backpropagation through time).
//
// The same architecture serves both of the paper's sequence tasks: 2-layer
// LSTM next-character prediction on Shakespeare (80-class head) and
// 2-layer LSTM binary sentiment classification on Sent140 (Section 5.1,
// Appendix C.1). Both tasks read the final hidden state of the top layer
// into the classification head.
//
// Parameters are flat, in the layout
//
//	[ E (V×D) | layer 0: Wx (4H×D), Wh (4H×H), b (4H) |
//	  layer l>0: Wx (4H×H), Wh (4H×H), b (4H) | ... | Wo (C×H) | bo (C) ]
//
// with gate rows ordered [input; forget; cell; output] inside each 4H
// block.
package lstm

import (
	"math"

	"fedprox/internal/data"
	"fedprox/internal/frand"
	"fedprox/internal/model"
	"fedprox/internal/tensor"
)

// Config describes the network shape.
type Config struct {
	// Vocab is the token vocabulary size (V).
	Vocab int
	// Embed is the embedding dimension (D). The paper uses 8 for
	// Shakespeare and pretrained 300-d GloVe for Sent140; here both are
	// learned (DESIGN.md §4).
	Embed int
	// Hidden is the per-layer hidden size (H). Paper: 100 (Shakespeare),
	// 256 (Sent140).
	Hidden int
	// Layers is the LSTM stack depth. Paper: 2 for both tasks.
	Layers int
	// Classes is the output label count (80 for next-char, 2 for
	// sentiment).
	Classes int
}

// Model is an embedding + stacked-LSTM + softmax classifier.
type Model struct {
	cfg Config
	// Cached offsets into the flat parameter vector.
	embOff  int
	layers  []layerOffsets
	woOff   int
	boOff   int
	nParams int
}

type layerOffsets struct {
	wx, wh, b int
	in        int // input width for this layer (D or H)
}

var _ model.Model = (*Model)(nil)

// New returns an LSTM model for the given configuration.
func New(cfg Config) *Model {
	if cfg.Vocab <= 1 || cfg.Embed <= 0 || cfg.Hidden <= 0 || cfg.Layers <= 0 || cfg.Classes <= 1 {
		panic("lstm: invalid config")
	}
	m := &Model{cfg: cfg}
	off := 0
	m.embOff = off
	off += cfg.Vocab * cfg.Embed
	in := cfg.Embed
	for l := 0; l < cfg.Layers; l++ {
		lo := layerOffsets{in: in}
		lo.wx = off
		off += 4 * cfg.Hidden * in
		lo.wh = off
		off += 4 * cfg.Hidden * cfg.Hidden
		lo.b = off
		off += 4 * cfg.Hidden
		m.layers = append(m.layers, lo)
		in = cfg.Hidden
	}
	m.woOff = off
	off += cfg.Classes * cfg.Hidden
	m.boOff = off
	off += cfg.Classes
	m.nParams = off
	return m
}

// ForDataset returns a model sized for a sequence federated dataset with
// the given embedding/hidden shape.
func ForDataset(f *data.Federated, embed, hidden, layers int) *Model {
	if f.VocabSize == 0 {
		panic("lstm: dataset is not a sequence task")
	}
	return New(Config{
		Vocab:   f.VocabSize,
		Embed:   embed,
		Hidden:  hidden,
		Layers:  layers,
		Classes: f.NumClasses,
	})
}

// Config returns the network shape.
func (m *Model) Config() Config { return m.cfg }

// NumParams returns the flat parameter count.
func (m *Model) NumParams() int { return m.nParams }

// InitParams returns Glorot-style initialized parameters with the forget-
// gate bias set to 1 (the standard trick to keep early gradients flowing).
func (m *Model) InitParams(rng *frand.Source) []float64 {
	w := make([]float64, m.nParams)
	H := m.cfg.Hidden
	// Embedding: small normal.
	rng.NormVec(w[m.embOff:m.embOff+m.cfg.Vocab*m.cfg.Embed], 0, 0.1)
	for _, lo := range m.layers {
		sx := 1 / math.Sqrt(float64(lo.in))
		sh := 1 / math.Sqrt(float64(H))
		rng.NormVec(w[lo.wx:lo.wx+4*H*lo.in], 0, sx)
		rng.NormVec(w[lo.wh:lo.wh+4*H*H], 0, sh)
		for i := 0; i < H; i++ {
			w[lo.b+H+i] = 1 // forget gate bias
		}
	}
	so := 1 / math.Sqrt(float64(H))
	rng.NormVec(w[m.woOff:m.woOff+m.cfg.Classes*H], 0, so)
	return w
}

// views over a flat vector (parameters or gradient).
type views struct {
	emb tensor.Mat // V×D
	wx  []tensor.Mat
	wh  []tensor.Mat
	b   [][]float64
	wo  tensor.Mat // C×H
	bo  []float64
}

func (m *Model) view(w []float64) views {
	if len(w) != m.nParams {
		panic("lstm: parameter vector size mismatch")
	}
	H := m.cfg.Hidden
	v := views{
		emb: tensor.MatView(w[m.embOff:m.embOff+m.cfg.Vocab*m.cfg.Embed], m.cfg.Vocab, m.cfg.Embed),
		wo:  tensor.MatView(w[m.woOff:m.woOff+m.cfg.Classes*H], m.cfg.Classes, H),
		bo:  w[m.boOff : m.boOff+m.cfg.Classes],
	}
	for _, lo := range m.layers {
		v.wx = append(v.wx, tensor.MatView(w[lo.wx:lo.wx+4*H*lo.in], 4*H, lo.in))
		v.wh = append(v.wh, tensor.MatView(w[lo.wh:lo.wh+4*H*H], 4*H, H))
		v.b = append(v.b, w[lo.b:lo.b+4*H])
	}
	return v
}

// trace holds the forward activations one example needs for BPTT.
type trace struct {
	// Per layer, per timestep.
	x    [][][]float64 // layer input at time t
	i    [][][]float64
	f    [][][]float64
	g    [][][]float64
	o    [][][]float64
	c    [][][]float64
	tanc [][][]float64 // tanh(c)
	h    [][][]float64
}

func newTrace(layers, steps, hidden int, inWidths []int) *trace {
	alloc3 := func(width func(l int) int) [][][]float64 {
		out := make([][][]float64, layers)
		for l := range out {
			out[l] = make([][]float64, steps)
			for t := range out[l] {
				out[l][t] = make([]float64, width(l))
			}
		}
		return out
	}
	hid := func(int) int { return hidden }
	return &trace{
		x:    alloc3(func(l int) int { return inWidths[l] }),
		i:    alloc3(hid),
		f:    alloc3(hid),
		g:    alloc3(hid),
		o:    alloc3(hid),
		c:    alloc3(hid),
		tanc: alloc3(hid),
		h:    alloc3(hid),
	}
}

// forward runs the network on one sequence and returns class logits. When
// tr is non-nil the activations are recorded for the backward pass.
func (m *Model) forward(v views, seq []int, tr *trace, logits []float64) {
	H := m.cfg.Hidden
	steps := len(seq)
	gates := make([]float64, 4*H)
	hPrev := make([][]float64, m.cfg.Layers)
	cPrev := make([][]float64, m.cfg.Layers)
	for l := range hPrev {
		hPrev[l] = make([]float64, H)
		cPrev[l] = make([]float64, H)
	}
	in := make([]float64, m.cfg.Embed)
	for t := 0; t < steps; t++ {
		copy(in, v.emb.Row(seq[t]))
		x := in
		for l := 0; l < m.cfg.Layers; l++ {
			tensor.MatVec(gates, v.wx[l], x)
			// gates += Wh·hPrev + b
			wh := v.wh[l]
			for r := 0; r < 4*H; r++ {
				row := wh.Row(r)
				s := gates[r] + v.b[l][r]
				hp := hPrev[l]
				for j, vv := range row {
					s += vv * hp[j]
				}
				gates[r] = s
			}
			var it, ft, gt, ot, ct, tct, ht []float64
			if tr != nil {
				it, ft, gt, ot = tr.i[l][t], tr.f[l][t], tr.g[l][t], tr.o[l][t]
				ct, tct, ht = tr.c[l][t], tr.tanc[l][t], tr.h[l][t]
				copy(tr.x[l][t], x)
			} else {
				it = make([]float64, H)
				ft, gt, ot = make([]float64, H), make([]float64, H), make([]float64, H)
				ct, tct, ht = make([]float64, H), make([]float64, H), make([]float64, H)
			}
			for j := 0; j < H; j++ {
				it[j] = tensor.Sigmoid(gates[j])
				ft[j] = tensor.Sigmoid(gates[H+j])
				gt[j] = tensor.Tanh(gates[2*H+j])
				ot[j] = tensor.Sigmoid(gates[3*H+j])
				ct[j] = ft[j]*cPrev[l][j] + it[j]*gt[j]
				tct[j] = tensor.Tanh(ct[j])
				ht[j] = ot[j] * tct[j]
			}
			copy(cPrev[l], ct)
			copy(hPrev[l], ht)
			x = ht
		}
	}
	top := hPrev[m.cfg.Layers-1]
	tensor.MatVecAdd(logits, v.wo, top, v.bo)
}

// Loss returns mean cross-entropy over the batch.
func (m *Model) Loss(w []float64, batch []data.Example) float64 {
	if len(batch) == 0 {
		return 0
	}
	v := m.view(w)
	logits := make([]float64, m.cfg.Classes)
	total := 0.0
	for _, ex := range batch {
		m.forward(v, ex.Seq, nil, logits)
		total += tensor.LogSumExp(logits) - logits[ex.Y]
	}
	return total / float64(len(batch))
}

// Predict returns the argmax class for one example.
func (m *Model) Predict(w []float64, ex data.Example) int {
	v := m.view(w)
	logits := make([]float64, m.cfg.Classes)
	m.forward(v, ex.Seq, nil, logits)
	return tensor.ArgMax(logits)
}

// Grad writes the mean cross-entropy gradient over the batch into dst and
// returns the mean loss. The backward pass is exact BPTT over the full
// sequence.
func (m *Model) Grad(dst, w []float64, batch []data.Example) float64 {
	if len(dst) != m.nParams {
		panic("lstm: gradient buffer size mismatch")
	}
	tensor.Zero(dst)
	if len(batch) == 0 {
		return 0
	}
	v := m.view(w)
	g := m.view(dst)
	H := m.cfg.Hidden
	L := m.cfg.Layers

	inWidths := make([]int, L)
	for l, lo := range m.layers {
		inWidths[l] = lo.in
	}

	logits := make([]float64, m.cfg.Classes)
	probs := make([]float64, m.cfg.Classes)
	dh := make([][]float64, L)   // gradient w.r.t. h_t per layer
	dc := make([][]float64, L)   // gradient w.r.t. c_t per layer
	dpre := make([]float64, 4*H) // gate pre-activation gradient
	dx := make([]float64, 0)     // gradient w.r.t. layer input
	dhNext := make([]float64, H) // scratch for Whᵀ·dpre
	total := 0.0
	inv := 1 / float64(len(batch))

	var tr *trace
	for _, ex := range batch {
		steps := len(ex.Seq)
		if tr == nil || len(tr.x[0]) < steps {
			tr = newTrace(L, steps, H, inWidths)
		}
		m.forward(v, ex.Seq, tr, logits)
		total += tensor.LogSumExp(logits) - logits[ex.Y]

		// Head gradient.
		tensor.Softmax(probs, logits)
		probs[ex.Y] -= 1
		top := tr.h[L-1][steps-1]
		tensor.AddOuter(g.wo, inv, probs, top)
		tensor.Axpy(inv, probs, g.bo)

		for l := 0; l < L; l++ {
			dh[l] = make([]float64, H)
			dc[l] = make([]float64, H)
		}
		// Seed dh at the top layer's final step: Woᵀ·(p − y).
		for j := 0; j < H; j++ {
			s := 0.0
			for cIdx := 0; cIdx < m.cfg.Classes; cIdx++ {
				s += v.wo.At(cIdx, j) * probs[cIdx]
			}
			dh[L-1][j] = s
		}

		for t := steps - 1; t >= 0; t-- {
			for l := L - 1; l >= 0; l-- {
				it, ft, gt, ot := tr.i[l][t], tr.f[l][t], tr.g[l][t], tr.o[l][t]
				tct := tr.tanc[l][t]
				var cPrev []float64
				if t > 0 {
					cPrev = tr.c[l][t-1]
				}
				for j := 0; j < H; j++ {
					dhj := dh[l][j]
					// dh/do and dh/dc through h = o·tanh(c).
					doj := dhj * tct[j]
					dcj := dc[l][j] + dhj*ot[j]*(1-tct[j]*tct[j])
					cp := 0.0
					if cPrev != nil {
						cp = cPrev[j]
					}
					dij := dcj * gt[j]
					dfj := dcj * cp
					dgj := dcj * it[j]
					dpre[j] = dij * it[j] * (1 - it[j])
					dpre[H+j] = dfj * ft[j] * (1 - ft[j])
					dpre[2*H+j] = dgj * (1 - gt[j]*gt[j])
					dpre[3*H+j] = doj * ot[j] * (1 - ot[j])
					// Carry dc to t−1.
					dc[l][j] = dcj * ft[j]
				}
				// Parameter gradients.
				x := tr.x[l][t]
				tensor.AddOuter(g.wx[l], inv, dpre, x)
				if t > 0 {
					tensor.AddOuter(g.wh[l], inv, dpre, tr.h[l][t-1])
				}
				tensor.Axpy(inv, dpre, g.b[l])
				// dh for t−1 of this layer: Whᵀ·dpre.
				wh := v.wh[l]
				for j := 0; j < H; j++ {
					dhNext[j] = 0
				}
				for r := 0; r < 4*H; r++ {
					d := dpre[r]
					if d == 0 {
						continue
					}
					row := wh.Row(r)
					for j := 0; j < H; j++ {
						dhNext[j] += row[j] * d
					}
				}
				copy(dh[l], dhNext)
				// dx: Wxᵀ·dpre feeds the layer below (or the embedding).
				if cap(dx) < len(x) {
					dx = make([]float64, len(x))
				}
				dx = dx[:len(x)]
				for j := range dx {
					dx[j] = 0
				}
				wx := v.wx[l]
				for r := 0; r < 4*H; r++ {
					d := dpre[r]
					if d == 0 {
						continue
					}
					row := wx.Row(r)
					for j := range dx {
						dx[j] += row[j] * d
					}
				}
				if l > 0 {
					// Same-timestep contribution to the layer below.
					tensor.Axpy(1, dx, dh[l-1])
				} else {
					// Embedding gradient for this token.
					tensor.Axpy(inv, dx, g.emb.Row(ex.Seq[t]))
				}
			}
		}
	}
	return total * inv
}
