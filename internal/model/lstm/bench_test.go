package lstm

import (
	"testing"

	"fedprox/internal/frand"
)

func benchModel(hidden int) (*Model, []float64) {
	m := New(Config{Vocab: 80, Embed: 8, Hidden: hidden, Layers: 2, Classes: 80})
	return m, m.InitParams(frand.New(1))
}

func BenchmarkForwardH32(b *testing.B) {
	m, w := benchModel(32)
	batch := randSeqBatch(frand.New(2), 10, 20, 80, 80)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Loss(w, batch)
	}
}

func BenchmarkGradH32(b *testing.B) {
	m, w := benchModel(32)
	batch := randSeqBatch(frand.New(2), 10, 20, 80, 80)
	grad := make([]float64, m.NumParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Grad(grad, w, batch)
	}
}

func BenchmarkGradH100PaperShape(b *testing.B) {
	// The paper's Shakespeare model: 2-layer LSTM, 100 hidden units,
	// 8-dim embedding, 80-char sequences.
	m, w := benchModel(100)
	batch := randSeqBatch(frand.New(2), 10, 80, 80, 80)
	grad := make([]float64, m.NumParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Grad(grad, w, batch)
	}
}
