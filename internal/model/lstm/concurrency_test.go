package lstm

import (
	"sync"
	"testing"

	"fedprox/internal/frand"
)

// TestConcurrentGradSafe: the federated core runs one local solve per
// goroutine against a shared Model value; Grad and Loss must be safe for
// concurrent use (all state in the call frame). Run with -race to verify.
func TestConcurrentGradSafe(t *testing.T) {
	m := smallModel()
	rng := frand.New(83)
	w := m.InitParams(rng)
	batch := randSeqBatch(rng, 4, 6, m.cfg.Vocab, m.cfg.Classes)

	want := m.Loss(w, batch)
	var wg sync.WaitGroup
	losses := make([]float64, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			grad := make([]float64, m.NumParams())
			losses[g] = m.Grad(grad, w, batch)
		}(g)
	}
	wg.Wait()
	for g, l := range losses {
		if l != want {
			t.Fatalf("goroutine %d computed loss %g, want %g", g, l, want)
		}
	}
}
