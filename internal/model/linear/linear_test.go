package linear

import (
	"math"
	"testing"

	"fedprox/internal/data"
	"fedprox/internal/frand"
	"fedprox/internal/model"
)

func randBatch(rng *frand.Source, n, dim, classes int) []data.Example {
	out := make([]data.Example, n)
	for i := range out {
		x := rng.NormVec(make([]float64, dim), 0, 1)
		out[i] = data.Example{X: x, Y: rng.Intn(classes)}
	}
	return out
}

func TestNumParams(t *testing.T) {
	m := New(60, 10)
	if got, want := m.NumParams(), 10*60+10; got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, tc := range []struct{ dim, classes int }{{0, 2}, {-1, 2}, {5, 1}, {5, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) did not panic", tc.dim, tc.classes)
				}
			}()
			New(tc.dim, tc.classes)
		}()
	}
}

func TestInitParamsZero(t *testing.T) {
	m := New(5, 3)
	w := m.InitParams(frand.New(1))
	for i, v := range w {
		if v != 0 {
			t.Fatalf("InitParams[%d] = %g, want 0", i, v)
		}
	}
}

// TestGradMatchesNumerical verifies the analytic gradient against central
// finite differences on a random batch.
func TestGradMatchesNumerical(t *testing.T) {
	rng := frand.New(7)
	m := New(6, 4)
	batch := randBatch(rng, 5, 6, 4)
	w := rng.NormVec(make([]float64, m.NumParams()), 0, 0.5)
	grad := make([]float64, m.NumParams())
	m.Grad(grad, w, batch)

	const h = 1e-6
	for i := 0; i < m.NumParams(); i++ {
		orig := w[i]
		w[i] = orig + h
		up := m.Loss(w, batch)
		w[i] = orig - h
		down := m.Loss(w, batch)
		w[i] = orig
		num := (up - down) / (2 * h)
		if math.Abs(num-grad[i]) > 1e-5*(1+math.Abs(num)) {
			t.Fatalf("grad[%d] = %g, numerical %g", i, grad[i], num)
		}
	}
}

func TestGradReturnsLoss(t *testing.T) {
	rng := frand.New(9)
	m := New(4, 3)
	batch := randBatch(rng, 8, 4, 3)
	w := rng.NormVec(make([]float64, m.NumParams()), 0, 1)
	grad := make([]float64, m.NumParams())
	gl := m.Grad(grad, w, batch)
	l := m.Loss(w, batch)
	if math.Abs(gl-l) > 1e-12 {
		t.Fatalf("Grad loss %g != Loss %g", gl, l)
	}
}

func TestEmptyBatch(t *testing.T) {
	m := New(4, 3)
	w := make([]float64, m.NumParams())
	if l := m.Loss(w, nil); l != 0 {
		t.Fatalf("Loss(empty) = %g, want 0", l)
	}
	grad := make([]float64, m.NumParams())
	grad[0] = 99
	if l := m.Grad(grad, w, nil); l != 0 {
		t.Fatalf("Grad(empty) = %g, want 0", l)
	}
	if grad[0] != 0 {
		t.Fatal("Grad(empty) did not zero the buffer")
	}
}

func TestLossAtZeroIsLogClasses(t *testing.T) {
	rng := frand.New(11)
	m := New(5, 7)
	batch := randBatch(rng, 10, 5, 7)
	w := make([]float64, m.NumParams())
	want := math.Log(7)
	if got := m.Loss(w, batch); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Loss at zero = %g, want log(7) = %g", got, want)
	}
}

// TestGradientDescentReducesLoss checks that plain GD on a separable batch
// drives the loss down monotonically (convexity sanity).
func TestGradientDescentReducesLoss(t *testing.T) {
	rng := frand.New(13)
	m := New(3, 2)
	// Linearly separable: class = sign of first coordinate.
	var batch []data.Example
	for i := 0; i < 40; i++ {
		x := rng.NormVec(make([]float64, 3), 0, 1)
		y := 0
		if x[0] > 0 {
			y = 1
		}
		batch = append(batch, data.Example{X: x, Y: y})
	}
	w := make([]float64, m.NumParams())
	grad := make([]float64, m.NumParams())
	prev := m.Loss(w, batch)
	for step := 0; step < 50; step++ {
		m.Grad(grad, w, batch)
		for i := range w {
			w[i] -= 0.5 * grad[i]
		}
		cur := m.Loss(w, batch)
		if cur > prev+1e-9 {
			t.Fatalf("loss increased at step %d: %g -> %g", step, prev, cur)
		}
		prev = cur
	}
	if acc := model.Accuracy(m, w, batch); acc < 0.95 {
		t.Fatalf("separable accuracy = %g, want >= 0.95", acc)
	}
}

func TestPredictArgmax(t *testing.T) {
	m := New(2, 3)
	w := make([]float64, m.NumParams())
	// W rows: class 0 = [1,0], class 1 = [0,1], class 2 = [0,0].
	w[0] = 1 // W[0][0]
	w[3] = 1 // W[1][1]
	if got := m.Predict(w, data.Example{X: []float64{5, 1}}); got != 0 {
		t.Fatalf("Predict = %d, want 0", got)
	}
	if got := m.Predict(w, data.Example{X: []float64{1, 5}}); got != 1 {
		t.Fatalf("Predict = %d, want 1", got)
	}
}

func TestGradBufferSizePanics(t *testing.T) {
	m := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Grad with wrong buffer size did not panic")
		}
	}()
	m.Grad(make([]float64, 3), make([]float64, m.NumParams()), nil)
}
