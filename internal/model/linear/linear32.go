package linear

import (
	"fedprox/internal/data"
	"fedprox/internal/model"
	"fedprox/internal/tensor"
)

var _ model.Model32 = (*Model)(nil)

// split32 returns the weight-matrix and bias views of a float32 w.
func (m *Model) split32(w tensor.Vec32) (tensor.Mat32, tensor.Vec32) {
	W := tensor.MatView32(w[:m.Classes*m.Dim], m.Classes, m.Dim)
	return W, w[m.Classes*m.Dim:]
}

// Grad32 is the batched float32 gradient: the minibatch is gathered into
// a row-major B×Dim panel once, the forward pass is one panel·Wᵀ
// multiply, softmax and loss share a single exp pass per example, and
// the weight gradient accumulates each of its rows across the whole
// batch while the row is hot (AddOuterPanel32) — versus the f64 path's
// per-example GEMV + two exp passes + rank-one update.
func (m *Model) Grad32(dst, w tensor.Vec32, batch []data.Example) float32 {
	if len(dst) != m.NumParams() {
		panic("linear: gradient buffer size mismatch")
	}
	tensor.Zero32(dst)
	if len(batch) == 0 {
		return 0
	}
	B := len(batch)
	W, b := m.split32(w)
	gW, gb := m.split32(dst)

	xbuf := tensor.GetVec32(B * m.Dim)
	X := tensor.MatView32(xbuf, B, m.Dim)
	for e, ex := range batch {
		tensor.Narrow(X.Row(e), ex.X)
	}
	pbuf := tensor.GetVec32(B * m.Classes)
	P := tensor.MatView32(pbuf, B, m.Classes)

	tensor.MatMulNT32(P, X, W, b) // logits panel
	var total float32
	for e, ex := range batch {
		row := P.Row(e)
		total += tensor.CrossEntropySoftmax32(row, row, ex.Y)
		row[ex.Y] -= 1 // p − onehot(y)
	}
	inv := 1 / float32(B)
	tensor.AddOuterPanel32(gW, inv, P, X)
	for e := 0; e < B; e++ {
		tensor.Axpy32(inv, P.Row(e), gb)
	}
	tensor.PutVec32(pbuf)
	tensor.PutVec32(xbuf)
	return total * inv
}
