// Package linear implements multinomial logistic regression — the convex
// workload the paper uses for the synthetic suite, MNIST, and FEMNIST
// ("we study a convex classification problem ... using multinomial
// logistic regression", Section 5.1).
//
// Parameters are laid out flat as [W row-major (classes×dim) | b
// (classes)]. The loss is mean softmax cross-entropy; the gradient is the
// standard (p − onehot(y)) ⊗ x rank-one form.
package linear

import (
	"fedprox/internal/data"
	"fedprox/internal/frand"
	"fedprox/internal/model"
	"fedprox/internal/tensor"
)

// Model is a softmax classifier with dense inputs.
type Model struct {
	// Dim is the input feature dimension.
	Dim int
	// Classes is the number of labels.
	Classes int
}

var _ model.Model = (*Model)(nil)

// New returns a multinomial logistic regression model.
func New(dim, classes int) *Model {
	if dim <= 0 || classes <= 1 {
		panic("linear: invalid shape")
	}
	return &Model{Dim: dim, Classes: classes}
}

// ForDataset returns a model sized for a dense federated dataset.
func ForDataset(f *data.Federated) *Model {
	if f.FeatureDim == 0 {
		panic("linear: dataset is not dense")
	}
	return New(f.FeatureDim, f.NumClasses)
}

// NumParams returns classes·dim + classes.
func (m *Model) NumParams() int { return m.Classes*m.Dim + m.Classes }

// InitParams returns a zero parameter vector. Zero init is the standard
// (and convex-optimal-agnostic) choice for logistic regression and matches
// a shared starting point w⁰ across all methods.
func (m *Model) InitParams(rng *frand.Source) []float64 {
	return make([]float64, m.NumParams())
}

// split returns the weight-matrix and bias views of w.
func (m *Model) split(w []float64) (tensor.Mat, []float64) {
	W := tensor.MatView(w[:m.Classes*m.Dim], m.Classes, m.Dim)
	return W, w[m.Classes*m.Dim:]
}

// Loss returns mean cross-entropy over the batch.
func (m *Model) Loss(w []float64, batch []data.Example) float64 {
	if len(batch) == 0 {
		return 0
	}
	W, b := m.split(w)
	logits := make([]float64, m.Classes)
	total := 0.0
	for _, ex := range batch {
		tensor.MatVecAdd(logits, W, ex.X, b)
		total += tensor.LogSumExp(logits) - logits[ex.Y]
	}
	return total / float64(len(batch))
}

// Grad writes the mean cross-entropy gradient into dst and returns the
// mean loss.
func (m *Model) Grad(dst, w []float64, batch []data.Example) float64 {
	if len(dst) != m.NumParams() {
		panic("linear: gradient buffer size mismatch")
	}
	tensor.Zero(dst)
	if len(batch) == 0 {
		return 0
	}
	W, b := m.split(w)
	gW, gb := m.split(dst)
	scratch := tensor.GetVec(2 * m.Classes)
	defer tensor.PutVec(scratch)
	logits, probs := scratch[:m.Classes], scratch[m.Classes:]
	total := 0.0
	inv := 1 / float64(len(batch))
	for _, ex := range batch {
		tensor.MatVecAdd(logits, W, ex.X, b)
		total += tensor.LogSumExp(logits) - logits[ex.Y]
		tensor.Softmax(probs, logits)
		probs[ex.Y] -= 1 // p − onehot(y)
		tensor.AddOuter(gW, inv, probs, ex.X)
		tensor.Axpy(inv, probs, gb)
	}
	return total * inv
}

// Predict returns argmax over class logits.
func (m *Model) Predict(w []float64, ex data.Example) int {
	W, b := m.split(w)
	logits := make([]float64, m.Classes)
	tensor.MatVecAdd(logits, W, ex.X, b)
	return tensor.ArgMax(logits)
}
