package model_test

import (
	"testing"

	"fedprox/internal/data"
	"fedprox/internal/model"
	"fedprox/internal/model/linear"
)

func TestAccuracy(t *testing.T) {
	m := linear.New(2, 2)
	w := make([]float64, m.NumParams())
	w[2] = 10 // class-1 weight on x0: predict 1 iff x0 > 0
	batch := []data.Example{
		{X: []float64{1, 0}, Y: 1},
		{X: []float64{-1, 0}, Y: 0},
		{X: []float64{2, 0}, Y: 0},  // wrong
		{X: []float64{-2, 0}, Y: 1}, // wrong
	}
	if got := model.Accuracy(m, w, batch); got != 0.5 {
		t.Fatalf("Accuracy = %g, want 0.5", got)
	}
}

func TestAccuracyEmptyBatch(t *testing.T) {
	m := linear.New(2, 2)
	if got := model.Accuracy(m, make([]float64, m.NumParams()), nil); got != 0 {
		t.Fatalf("Accuracy(empty) = %g, want 0", got)
	}
}
