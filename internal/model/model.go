// Package model defines the interface between learning workloads and the
// federated optimization core.
//
// The paper's framework is model-agnostic: the server and local solvers
// only ever see a flat parameter vector w, a loss F_k(w), and a gradient
// ∇F_k(w). Keeping parameters flat makes the three operations the
// framework is built on trivial and uniform across workloads: server-side
// averaging of returned models, the proximal penalty (μ/2)·‖w − wᵗ‖², and
// the dissimilarity metric E_k‖∇F_k(w) − ∇f(w)‖².
package model

import (
	"fedprox/internal/data"
	"fedprox/internal/frand"
)

// Model is a learning workload over flat parameter vectors.
//
// Implementations must be stateless with respect to parameters: every
// method takes w explicitly, so a single Model can be shared by all
// simulated devices concurrently.
type Model interface {
	// NumParams returns the length of the parameter vector.
	NumParams() int
	// InitParams returns a freshly initialized parameter vector.
	InitParams(rng *frand.Source) []float64
	// Loss returns the mean loss of w over the batch.
	Loss(w []float64, batch []data.Example) float64
	// Grad writes the mean gradient of the loss over the batch into dst
	// (overwriting it) and returns the mean loss. len(dst) must equal
	// NumParams.
	Grad(dst, w []float64, batch []data.Example) float64
	// Predict returns the predicted label for a single example.
	Predict(w []float64, ex data.Example) int
}

// Accuracy returns the fraction of examples in batch that m predicts
// correctly under parameters w. It returns 0 for an empty batch.
func Accuracy(m Model, w []float64, batch []data.Example) float64 {
	if len(batch) == 0 {
		return 0
	}
	correct := 0
	for _, ex := range batch {
		if m.Predict(w, ex) == ex.Y {
			correct++
		}
	}
	return float64(correct) / float64(len(batch))
}
