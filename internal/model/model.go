// Package model defines the interface between learning workloads and the
// federated optimization core.
//
// The paper's framework is model-agnostic: the server and local solvers
// only ever see a flat parameter vector w, a loss F_k(w), and a gradient
// ∇F_k(w). Keeping parameters flat makes the three operations the
// framework is built on trivial and uniform across workloads: server-side
// averaging of returned models, the proximal penalty (μ/2)·‖w − wᵗ‖², and
// the dissimilarity metric E_k‖∇F_k(w) − ∇f(w)‖².
package model

import (
	"fedprox/internal/data"
	"fedprox/internal/frand"
	"fedprox/internal/tensor"
)

// Model is a learning workload over flat parameter vectors.
//
// Implementations must be stateless with respect to parameters: every
// method takes w explicitly, so a single Model can be shared by all
// simulated devices concurrently.
type Model interface {
	// NumParams returns the length of the parameter vector.
	NumParams() int
	// InitParams returns a freshly initialized parameter vector.
	InitParams(rng *frand.Source) []float64
	// Loss returns the mean loss of w over the batch.
	Loss(w []float64, batch []data.Example) float64
	// Grad writes the mean gradient of the loss over the batch into dst
	// (overwriting it) and returns the mean loss. len(dst) must equal
	// NumParams.
	Grad(dst, w []float64, batch []data.Example) float64
	// Predict returns the predicted label for a single example.
	Predict(w []float64, ex data.Example) int
}

// Model32 is the optional float32 fast path a Model may implement. The
// f32 solvers type-assert for it: when present (and the run opts into
// tensor.F32 precision), local SGD/GD steps call Grad32 on narrowed
// parameters and only widen once at the reply boundary.
//
// Implementations are expected to batch: Grad32 should walk the whole
// minibatch per call (gathering examples into row-major panels) rather
// than re-entering a per-example inner loop, since the f32 mode exists
// for hot-path speed. The f64 Grad stays the reference semantics; Grad32
// must compute the same mean gradient up to float32 rounding.
type Model32 interface {
	Model
	// Grad32 writes the mean gradient of the loss over the batch into
	// dst (overwriting it) and returns the mean loss, all in float32.
	Grad32(dst, w tensor.Vec32, batch []data.Example) float32
}

// Accuracy returns the fraction of examples in batch that m predicts
// correctly under parameters w. It returns 0 for an empty batch.
func Accuracy(m Model, w []float64, batch []data.Example) float64 {
	if len(batch) == 0 {
		return 0
	}
	correct := 0
	for _, ex := range batch {
		if m.Predict(w, ex) == ex.Y {
			correct++
		}
	}
	return float64(correct) / float64(len(batch))
}
