// Package vtime is a seeded discrete-event simulation engine for
// federated deployments: a virtual clock plus an event queue ordered by
// (time, tiebreak sequence), with pluggable per-device latency models.
//
// The paper's subject — device heterogeneity, stragglers, partial work —
// is fundamentally about time, yet a simulator has no wall clock. vtime
// supplies one that is deterministic: every latency draw derives from a
// seed via internal/frand, and simultaneous events fire in schedule
// order, so a simulated asynchronous run is exactly reproducible where a
// real deployment's arrival order is not. internal/core drives its
// asynchronous aggregation modes (and the virtual duration accounting of
// its synchronous rounds) against this engine.
//
// The latency of one device round-trip decomposes the way MLSYSIM-style
// infrastructure models do:
//
//	downlink(encoded broadcast bytes) + compute(epochs over the local
//	shard) + uplink(encoded reply bytes)
//
// with per-transfer jitter and loss. Compute models are pluggable
// (internal/syshet's Fleet satisfies ComputeModel), and transfer times
// are functions of the *encoded* wire sizes from internal/comm, so codec
// choices change virtual time, not just byte counters.
package vtime

import "container/heap"

// Event is one scheduled callback.
type event struct {
	at  float64
	seq int
	fn  func()
}

// eventHeap orders events by (time, sequence): earlier time first, and
// among simultaneous events the one scheduled first. The tiebreak is what
// makes runs reproducible — no map iteration or goroutine scheduling ever
// decides an ordering.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Engine is a virtual clock plus its pending events. The zero value is
// ready to use at time 0.
type Engine struct {
	now float64
	seq int
	pq  eventHeap
}

// NewEngine returns an engine at virtual time 0 with no pending events.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return len(e.pq) }

// Schedule registers fn to fire at absolute virtual time at. Times in the
// past clamp to Now: an event can never fire before the present, so the
// clock is monotone.
func (e *Engine) Schedule(at float64, fn func()) {
	if at < e.now {
		at = e.now
	}
	heap.Push(&e.pq, event{at: at, seq: e.seq, fn: fn})
	e.seq++
}

// After registers fn to fire d seconds from now (negative d clamps to 0).
func (e *Engine) After(d float64, fn func()) {
	e.Schedule(e.now+d, fn)
}

// Advance moves the clock forward by d seconds without firing anything —
// the hook for charging analytically-computed durations (a synchronous
// round, an evaluation broadcast) to the clock. Negative d is ignored.
func (e *Engine) Advance(d float64) {
	if d > 0 {
		e.now += d
	}
}

// Step fires the earliest pending event, advancing the clock to its time.
// The clock never moves backwards: an event overtaken by Advance (e.g. an
// evaluation charge while replies are pending) fires at the present.
// It returns false when no events are pending.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(event)
	if ev.at > e.now {
		e.now = ev.at
	}
	ev.fn()
	return true
}

// Run fires events until the queue is empty. Events may schedule further
// events; Run returns only when nothing is pending.
func (e *Engine) Run() {
	for e.Step() {
	}
}
