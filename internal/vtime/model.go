package vtime

import (
	"fmt"
	"math"

	"fedprox/internal/frand"
)

// EvalDevice is the pseudo-device identifying the shared evaluation
// broadcast link in transfer-time queries. Latency models must accept it;
// the built-in Model gives it nominal (factor 1) bandwidth.
const EvalDevice = -1

// LatencyModel yields the virtual durations of one device round-trip's
// legs. Implementations must be pure functions of their arguments (plus
// construction-time seeds): the engine replays them, and reproducibility
// depends on identical draws.
//
// seq is the dispatch sequence number of the transfer (the simulator's
// per-request counter), which decorrelates jitter across a device's
// successive contacts; round plays the same role for compute.
type LatencyModel interface {
	// ComputeSeconds is the local training time for epochs full passes
	// over the device's shard.
	ComputeSeconds(round, device, epochs int) float64
	// UplinkSeconds is the transfer time of bytes encoded bytes from the
	// device to the coordinator.
	UplinkSeconds(seq, device int, bytes int64) float64
	// DownlinkSeconds is the transfer time of bytes encoded bytes from
	// the coordinator to the device (EvalDevice for the shared
	// evaluation broadcast).
	DownlinkSeconds(seq, device int, bytes int64) float64
	// Dropped reports whether the device's reply for dispatch seq is
	// lost in transit (the work is wasted and the coordinator never
	// folds it).
	Dropped(seq, device int) bool
}

// ComputeModel is the compute leg alone, satisfied by
// syshet.(*Fleet).ComputeSeconds — a fleet of tiered, jittered devices —
// and by UniformCompute below.
type ComputeModel interface {
	ComputeSeconds(round, device, epochs int) float64
}

// UniformCompute charges a fixed time per local epoch, optionally scaled
// per device — the minimal compute model, enough to build controlled
// slow-tail scenarios.
type UniformCompute struct {
	// SecondsPerEpoch is the nominal duration of one local epoch.
	SecondsPerEpoch float64
	// Speed, when non-nil, scales the device's rate: an epoch takes
	// SecondsPerEpoch / Speed(device). Return 1 for nominal devices.
	Speed func(device int) float64
}

// ComputeSeconds implements ComputeModel.
func (u UniformCompute) ComputeSeconds(round, device, epochs int) float64 {
	if epochs <= 0 {
		return 0
	}
	s := 1.0
	if u.Speed != nil {
		if f := u.Speed(device); f > 0 {
			s = f
		}
	}
	return float64(epochs) * u.SecondsPerEpoch / s
}

// SlowTail returns a per-device speed factor for a fleet of n devices in
// which the last ceil(frac*n) devices run factor times slower (speed
// 1/factor) — the controlled "10x-slow tail" of straggler experiments.
// Devices outside [0, n) (e.g. EvalDevice) get factor 1.
func SlowTail(n int, frac, factor float64) func(device int) float64 {
	tail := int(math.Ceil(frac * float64(n)))
	if tail > n {
		tail = n
	}
	first := n - tail
	return func(device int) float64 {
		if device >= first && device < n && factor > 0 {
			return 1 / factor
		}
		return 1
	}
}

// Net parameterizes the network legs of the built-in Model.
type Net struct {
	// UplinkBps and DownlinkBps are link bandwidths in bytes per second.
	// Zero or negative means infinitely fast (the leg costs Latency
	// alone) — useful to isolate compute heterogeneity.
	UplinkBps, DownlinkBps float64
	// Latency is the fixed per-transfer overhead in seconds
	// (propagation, framing, handshake), charged on every leg.
	Latency float64
	// JitterStd is the sigma of the log-normal multiplicative jitter on
	// each transfer time (0 disables jitter). The jitter is mean-one.
	JitterStd float64
	// DropProb is the probability a reply is lost in transit, in [0, 1).
	DropProb float64
	// Speed, when non-nil, scales a device's bandwidth in both
	// directions (a 0.1 factor makes transfers 10x slower). EvalDevice
	// and out-of-range devices should be given factor 1 by the caller's
	// function; the built-in SlowTail already does.
	Speed func(device int) float64
}

// Validate reports the first configuration error, or nil.
func (n Net) Validate() error {
	if n.Latency < 0 {
		return fmt.Errorf("vtime: negative Latency %g", n.Latency)
	}
	if n.JitterStd < 0 {
		return fmt.Errorf("vtime: negative JitterStd %g", n.JitterStd)
	}
	if n.DropProb < 0 || n.DropProb >= 1 {
		return fmt.Errorf("vtime: DropProb must be in [0,1), got %g", n.DropProb)
	}
	return nil
}

// Model is the built-in LatencyModel: a pluggable compute model plus a
// Net, with frand-seeded jitter and loss. Every draw is a pure function
// of (seed, leg, seq, device), so two models built with the same
// arguments produce identical latency streams.
type Model struct {
	compute ComputeModel
	net     Net

	upRoot, downRoot, dropRoot *frand.Source
}

// NewModel builds a Model. compute may be nil, making computation
// instantaneous (a pure network model). The seed drives jitter and loss
// only; it is independent of the run seed so the same deployment can be
// replayed under different environment randomness.
func NewModel(compute ComputeModel, net Net, seed uint64) (*Model, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	root := frand.New(seed)
	return &Model{
		compute:  compute,
		net:      net,
		upRoot:   root.Split("uplink"),
		downRoot: root.Split("downlink"),
		dropRoot: root.Split("drop"),
	}, nil
}

// MustModel is NewModel for static configurations known valid.
func MustModel(compute ComputeModel, net Net, seed uint64) *Model {
	m, err := NewModel(compute, net, seed)
	if err != nil {
		panic(err)
	}
	return m
}

// ComputeSeconds implements LatencyModel.
func (m *Model) ComputeSeconds(round, device, epochs int) float64 {
	if m.compute == nil || epochs <= 0 {
		return 0
	}
	return m.compute.ComputeSeconds(round, device, epochs)
}

// transfer is the shared leg implementation: bytes over (possibly
// device-scaled) bandwidth, plus fixed latency, times mean-one log-normal
// jitter drawn from the leg's (seq, device) stream.
func (m *Model) transfer(root *frand.Source, bps float64, seq, device int, bytes int64) float64 {
	t := m.net.Latency
	if bps > 0 && bytes > 0 {
		speed := 1.0
		if m.net.Speed != nil && device != EvalDevice {
			if f := m.net.Speed(device); f > 0 {
				speed = f
			}
		}
		t += float64(bytes) / (bps * speed)
	}
	if m.net.JitterStd > 0 && t > 0 {
		z := root.SplitIndex(seq).SplitIndex(device + 2).Norm()
		t *= math.Exp(m.net.JitterStd*z - m.net.JitterStd*m.net.JitterStd/2)
	}
	return t
}

// UplinkSeconds implements LatencyModel.
func (m *Model) UplinkSeconds(seq, device int, bytes int64) float64 {
	return m.transfer(m.upRoot, m.net.UplinkBps, seq, device, bytes)
}

// DownlinkSeconds implements LatencyModel.
func (m *Model) DownlinkSeconds(seq, device int, bytes int64) float64 {
	return m.transfer(m.downRoot, m.net.DownlinkBps, seq, device, bytes)
}

// Dropped implements LatencyModel.
func (m *Model) Dropped(seq, device int) bool {
	if m.net.DropProb <= 0 {
		return false
	}
	return m.dropRoot.SplitIndex(seq).SplitIndex(device + 2).Bernoulli(m.net.DropProb)
}
