package vtime

import (
	"math"
	"testing"
)

// TestEngineOrdersByTimeThenSeq: events fire in (time, schedule-order)
// order, simultaneous events included — the tiebreak the simulator's
// reproducibility rests on.
func TestEngineOrdersByTimeThenSeq(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(2.0, func() { got = append(got, 3) })
	e.Schedule(1.0, func() { got = append(got, 1) })
	e.Schedule(1.0, func() { got = append(got, 2) }) // same time, later seq
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
	if e.Now() != 2.0 {
		t.Fatalf("clock %g, want 2.0", e.Now())
	}
}

// TestEngineClockMonotone: past schedules clamp to the present, Advance
// never runs backwards, and Step never rewinds the clock to an event
// that Advance overtook.
func TestEngineClockMonotone(t *testing.T) {
	e := NewEngine()
	e.Advance(5)
	e.Advance(-3)
	if e.Now() != 5 {
		t.Fatalf("clock %g, want 5", e.Now())
	}
	fired := math.NaN()
	e.Schedule(1.0, func() { fired = e.Now() }) // in the past: clamps to now
	e.Run()
	if fired != 5 {
		t.Fatalf("past event fired at %g, want clamp to 5", fired)
	}
	// An event scheduled before a mid-run Advance must not rewind the
	// clock when it fires (the async path advances for eval broadcasts
	// while replies are still pending).
	e2 := NewEngine()
	e2.Schedule(2, func() {})
	e2.Advance(10)
	e2.Run()
	if e2.Now() != 10 {
		t.Fatalf("Step rewound the clock to %g, want 10", e2.Now())
	}
}

// TestEngineNestedSchedules: events scheduling further events interleave
// correctly with already-pending ones.
func TestEngineNestedSchedules(t *testing.T) {
	e := NewEngine()
	var got []string
	e.Schedule(1, func() {
		got = append(got, "a")
		e.After(0.5, func() { got = append(got, "a+0.5") })
	})
	e.Schedule(2, func() { got = append(got, "b") })
	e.Run()
	want := []string{"a", "a+0.5", "b"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestModelDeterministic: two models built with identical arguments
// produce identical latency and loss streams.
func TestModelDeterministic(t *testing.T) {
	mk := func() *Model {
		return MustModel(
			UniformCompute{SecondsPerEpoch: 0.1, Speed: SlowTail(10, 0.2, 10)},
			Net{UplinkBps: 1e6, DownlinkBps: 4e6, Latency: 0.02, JitterStd: 0.3, DropProb: 0.1},
			42,
		)
	}
	a, b := mk(), mk()
	for seq := 0; seq < 50; seq++ {
		for dev := -1; dev < 10; dev++ {
			if x, y := a.UplinkSeconds(seq, dev, 8000), b.UplinkSeconds(seq, dev, 8000); x != y {
				t.Fatalf("uplink(%d,%d) %g != %g", seq, dev, x, y)
			}
			if x, y := a.DownlinkSeconds(seq, dev, 8000), b.DownlinkSeconds(seq, dev, 8000); x != y {
				t.Fatalf("downlink(%d,%d) %g != %g", seq, dev, x, y)
			}
			if x, y := a.Dropped(seq, dev), b.Dropped(seq, dev); x != y {
				t.Fatalf("dropped(%d,%d) %v != %v", seq, dev, x, y)
			}
			if x, y := a.ComputeSeconds(seq, dev, 3), b.ComputeSeconds(seq, dev, 3); x != y {
				t.Fatalf("compute(%d,%d) %g != %g", seq, dev, x, y)
			}
		}
	}
}

// TestSlowTail: the tail fraction runs factor times slower, everyone
// else (and the eval pseudo-device) at nominal speed.
func TestSlowTail(t *testing.T) {
	speed := SlowTail(10, 0.2, 10)
	for dev := 0; dev < 8; dev++ {
		if s := speed(dev); s != 1 {
			t.Fatalf("device %d speed %g, want 1", dev, s)
		}
	}
	for dev := 8; dev < 10; dev++ {
		if s := speed(dev); s != 0.1 {
			t.Fatalf("device %d speed %g, want 0.1", dev, s)
		}
	}
	if s := speed(EvalDevice); s != 1 {
		t.Fatalf("eval device speed %g, want 1", s)
	}
	// The tail actually slows transfers and compute.
	m := MustModel(UniformCompute{SecondsPerEpoch: 1, Speed: speed}, Net{UplinkBps: 1000, Speed: speed}, 1)
	if fast, slow := m.ComputeSeconds(0, 0, 2), m.ComputeSeconds(0, 9, 2); slow != 10*fast {
		t.Fatalf("compute slow/fast = %g/%g, want 10x", slow, fast)
	}
	if fast, slow := m.UplinkSeconds(0, 0, 1000), m.UplinkSeconds(0, 9, 1000); slow != 10*fast {
		t.Fatalf("uplink slow/fast = %g/%g, want 10x", slow, fast)
	}
}

// TestNetDefaultsAndValidation: zero bandwidth means latency-only legs;
// invalid knobs are rejected.
func TestNetDefaultsAndValidation(t *testing.T) {
	m := MustModel(nil, Net{Latency: 0.5}, 0)
	if d := m.DownlinkSeconds(0, 3, 1<<20); d != 0.5 {
		t.Fatalf("latency-only transfer %g, want 0.5", d)
	}
	if c := m.ComputeSeconds(0, 0, 5); c != 0 {
		t.Fatalf("nil compute model charged %g", c)
	}
	if m.Dropped(0, 0) {
		t.Fatal("DropProb 0 dropped a reply")
	}
	for _, bad := range []Net{{Latency: -1}, {JitterStd: -0.1}, {DropProb: 1}, {DropProb: -0.5}} {
		if _, err := NewModel(nil, bad, 0); err == nil {
			t.Fatalf("invalid net %+v accepted", bad)
		}
	}
}

// TestJitterMeanOne: the log-normal jitter is mean-one, so expected
// transfer time equals the nominal time.
func TestJitterMeanOne(t *testing.T) {
	m := MustModel(nil, Net{UplinkBps: 1e6, JitterStd: 0.4}, 9)
	nominal := 8000.0 / 1e6
	sum := 0.0
	const trials = 20000
	for seq := 0; seq < trials; seq++ {
		sum += m.UplinkSeconds(seq, 0, 8000)
	}
	mean := sum / trials
	if math.Abs(mean-nominal)/nominal > 0.05 {
		t.Fatalf("jittered mean %g vs nominal %g (>5%% off)", mean, nominal)
	}
}
