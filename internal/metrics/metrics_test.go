package metrics

import (
	"math"
	"testing"

	"fedprox/internal/data"
	"fedprox/internal/frand"
	"fedprox/internal/model/linear"
)

// identicalShards builds a network whose devices all hold the same data,
// the B(w) = 1 sanity case from Definition 3.
func identicalShards(devices int) *data.Federated {
	rng := frand.New(21)
	base := make([]data.Example, 30)
	for i := range base {
		x := rng.NormVec(make([]float64, 4), 0, 1)
		y := 0
		if x[0] > 0 {
			y = 1
		}
		base[i] = data.Example{X: x, Y: y}
	}
	fed := &data.Federated{Name: "identical", NumClasses: 2, FeatureDim: 4}
	for d := 0; d < devices; d++ {
		fed.Shards = append(fed.Shards, &data.Shard{ID: d, Train: base, Test: base[:5]})
	}
	return fed
}

func skewedShards() *data.Federated {
	rng := frand.New(23)
	fed := &data.Federated{Name: "skewed", NumClasses: 2, FeatureDim: 4}
	for d := 0; d < 6; d++ {
		exs := make([]data.Example, 20)
		for i := range exs {
			x := rng.NormVec(make([]float64, 4), float64(d), 1)
			exs[i] = data.Example{X: x, Y: d % 2}
		}
		fed.Shards = append(fed.Shards, &data.Shard{ID: d, Train: exs, Test: exs[:4]})
	}
	return fed
}

func TestGlobalLossWeighted(t *testing.T) {
	fed := identicalShards(4)
	m := linear.ForDataset(fed)
	w := make([]float64, m.NumParams())
	// All shards identical ⇒ global loss equals any single shard's loss.
	want := m.Loss(w, fed.Shards[0].Train)
	if got := GlobalLoss(m, fed, w); math.Abs(got-want) > 1e-12 {
		t.Fatalf("GlobalLoss = %g, want %g", got, want)
	}
}

func TestGlobalLossRespectsWeights(t *testing.T) {
	// Two devices with different sizes: the larger must dominate.
	rng := frand.New(25)
	mk := func(n int, mean float64, y int) []data.Example {
		out := make([]data.Example, n)
		for i := range out {
			out[i] = data.Example{X: rng.NormVec(make([]float64, 2), mean, 0.1), Y: y}
		}
		return out
	}
	fed := &data.Federated{Name: "two", NumClasses: 2, FeatureDim: 2}
	fed.Shards = append(fed.Shards,
		&data.Shard{ID: 0, Train: mk(90, 1, 0), Test: mk(2, 1, 0)},
		&data.Shard{ID: 1, Train: mk(10, -1, 1), Test: mk(2, -1, 1)},
	)
	m := linear.ForDataset(fed)
	w := make([]float64, m.NumParams())
	l0 := m.Loss(w, fed.Shards[0].Train)
	l1 := m.Loss(w, fed.Shards[1].Train)
	want := 0.9*l0 + 0.1*l1
	if got := GlobalLoss(m, fed, w); math.Abs(got-want) > 1e-12 {
		t.Fatalf("GlobalLoss = %g, want %g", got, want)
	}
}

func TestTestAccuracyPerfectAndZero(t *testing.T) {
	fed := identicalShards(3)
	m := linear.ForDataset(fed)
	// Weights that implement "predict 1 iff x0 > 0" exactly: class-1 row
	// gets +x0 weight.
	w := make([]float64, m.NumParams())
	w[4] = 100 // W[1][0]
	acc := TestAccuracy(m, fed, w)
	if acc < 0.99 {
		t.Fatalf("constructed classifier accuracy = %g, want ~1", acc)
	}
	// Inverted classifier: accuracy ~0.
	w[4] = -100
	if acc := TestAccuracy(m, fed, w); acc > 0.01 {
		t.Fatalf("inverted classifier accuracy = %g, want ~0", acc)
	}
}

func TestTestAccuracyEmptyNetwork(t *testing.T) {
	fed := &data.Federated{Name: "e", NumClasses: 2, FeatureDim: 1,
		Shards: []*data.Shard{{Train: []data.Example{{X: []float64{1}, Y: 0}}}}}
	m := linear.ForDataset(fed)
	if acc := TestAccuracy(m, fed, make([]float64, m.NumParams())); acc != 0 {
		t.Fatalf("accuracy with no test data = %g, want 0", acc)
	}
}

func TestDissimilarityIdenticalDevices(t *testing.T) {
	fed := identicalShards(5)
	m := linear.ForDataset(fed)
	rng := frand.New(27)
	w := rng.NormVec(make([]float64, m.NumParams()), 0, 0.5)
	variance, b := Dissimilarity(m, fed, w)
	if variance > 1e-18 {
		t.Fatalf("identical devices have gradient variance %g, want 0", variance)
	}
	if math.Abs(b-1) > 1e-6 {
		t.Fatalf("identical devices B(w) = %g, want 1", b)
	}
}

func TestDissimilarityGrowsWithSkew(t *testing.T) {
	fed := skewedShards()
	m := linear.ForDataset(fed)
	rng := frand.New(29)
	w := rng.NormVec(make([]float64, m.NumParams()), 0, 0.5)
	vSkew, bSkew := Dissimilarity(m, fed, w)
	if vSkew <= 0 {
		t.Fatalf("skewed variance = %g, want > 0", vSkew)
	}
	if bSkew < 1 {
		t.Fatalf("B(w) = %g, want >= 1", bSkew)
	}
}

func TestGradVarianceMatchesDissimilarity(t *testing.T) {
	fed := skewedShards()
	m := linear.ForDataset(fed)
	w := make([]float64, m.NumParams())
	v1 := GradVariance(m, fed, w)
	v2, _ := Dissimilarity(m, fed, w)
	if v1 != v2 {
		t.Fatalf("GradVariance %g != Dissimilarity variance %g", v1, v2)
	}
}

// TestVarianceIdentity checks E‖∇F_k − ∇f‖² = E‖∇F_k‖² − ‖∇f‖², the
// identity behind Corollary 10, holds for the implementation.
func TestVarianceIdentity(t *testing.T) {
	fed := skewedShards()
	m := linear.ForDataset(fed)
	rng := frand.New(31)
	w := rng.NormVec(make([]float64, m.NumParams()), 0, 0.3)
	variance, b := Dissimilarity(m, fed, w)

	// Recompute the two sides by hand.
	weights := fed.Weights()
	gf := make([]float64, m.NumParams())
	exp2 := 0.0
	grads := make([][]float64, len(fed.Shards))
	for k, s := range fed.Shards {
		g := make([]float64, m.NumParams())
		m.Grad(g, w, s.Train)
		grads[k] = g
		for i := range gf {
			gf[i] += weights[k] * g[i]
		}
	}
	normF2 := 0.0
	for _, v := range gf {
		normF2 += v * v
	}
	for k, g := range grads {
		d := 0.0
		for i := range g {
			d += g[i] * g[i]
		}
		exp2 += weights[k] * d
	}
	if math.Abs(variance-(exp2-normF2)) > 1e-9*(1+exp2) {
		t.Fatalf("variance identity violated: %g vs %g", variance, exp2-normF2)
	}
	if wantB := math.Sqrt(exp2 / normF2); math.Abs(b-wantB) > 1e-9 {
		t.Fatalf("B = %g, want %g", b, wantB)
	}
}

func TestForEachShardSmallN(t *testing.T) {
	// n=1 exercises the sequential path.
	hit := 0
	forEachShard(1, func(k int) { hit++ })
	if hit != 1 {
		t.Fatalf("forEachShard(1) ran %d times", hit)
	}
	// Large n exercises the pool; every index exactly once.
	var mu = make([]int, 100)
	forEachShard(100, func(k int) { mu[k]++ })
	for k, c := range mu {
		if c != 1 {
			t.Fatalf("index %d ran %d times", k, c)
		}
	}
}
