// Package metrics evaluates the quantities the paper reports: the global
// objective f(w) (training loss), testing accuracy, and the gradient-
// variance dissimilarity measure that tracks the B-local dissimilarity of
// Definition 3.
//
// All quantities are exact sums over every device in the network (not just
// the sampled subset), matching "we report all metrics based on the global
// objective f(w)" (Section 5.1). Evaluation fans out across shards with a
// bounded worker pool because it is by far the most expensive part of a
// simulated round.
//
// Every metric is defined over a data.Fleet, the lazy population view:
// workers materialize a shard, measure it, and release it, so peak memory
// during evaluation is O(workers × shard), not O(population) — the
// property that lets a 10^6-device run afford its milestone evaluations.
// The *data.Federated forms delegate through the eager Fleet adapter and
// return bit-identical results.
package metrics

import (
	"math"
	"runtime"
	"sync"

	"fedprox/internal/data"
	"fedprox/internal/model"
	"fedprox/internal/tensor"
)

// GlobalLoss returns f(w) = Σ_k p_k F_k(w) with p_k = n_k/n over local
// training sets.
func GlobalLoss(m model.Model, fed *data.Federated, w []float64) float64 {
	return FleetLoss(m, fed.Fleet(), w)
}

// FleetLoss is GlobalLoss over a lazy fleet: shards are materialized,
// measured, and released one at a time per worker. The weighted sum is
// accumulated in ascending device order, so the result is bit-identical
// across worker counts and to the eager path.
func FleetLoss(m model.Model, fl data.Fleet, w []float64) float64 {
	weights := data.FleetWeights(fl)
	losses := make([]float64, fl.NumDevices())
	forEachShard(len(losses), func(k int) {
		s := fl.Shard(k)
		losses[k] = m.Loss(w, s.Train)
		fl.Release(k)
	})
	total := 0.0
	for k, l := range losses {
		total += weights[k] * l
	}
	return total
}

// TestAccuracy returns the network-wide test accuracy: total correct
// predictions over total test examples across every device.
func TestAccuracy(m model.Model, fed *data.Federated, w []float64) float64 {
	return FleetAccuracy(m, fed.Fleet(), w)
}

// FleetAccuracy is TestAccuracy over a lazy fleet.
func FleetAccuracy(m model.Model, fl data.Fleet, w []float64) float64 {
	n := fl.NumDevices()
	correct := make([]int, n)
	counts := make([]int, n)
	forEachShard(n, func(k int) {
		s := fl.Shard(k)
		for _, ex := range s.Test {
			if m.Predict(w, ex) == ex.Y {
				correct[k]++
			}
		}
		counts[k] = len(s.Test)
		fl.Release(k)
	})
	c, total := 0, 0
	for k := range correct {
		c += correct[k]
		total += counts[k]
	}
	if total == 0 {
		return 0
	}
	return float64(c) / float64(total)
}

// PerClassAccuracy returns test accuracy broken down by true label, plus
// per-class test counts. It is the instrument for the paper's bias claim:
// dropping stragglers "may induce bias in the device sampling procedure if
// the dropped devices have specific data characteristics" (Section 2) —
// visible as depressed accuracy on exactly the classes the dropped
// devices hold.
func PerClassAccuracy(m model.Model, fed *data.Federated, w []float64) (acc []float64, counts []int) {
	classes := fed.NumClasses
	correct := make([][]int, len(fed.Shards))
	total := make([][]int, len(fed.Shards))
	forEachShard(len(fed.Shards), func(k int) {
		c := make([]int, classes)
		n := make([]int, classes)
		for _, ex := range fed.Shards[k].Test {
			n[ex.Y]++
			if m.Predict(w, ex) == ex.Y {
				c[ex.Y]++
			}
		}
		correct[k], total[k] = c, n
	})
	acc = make([]float64, classes)
	counts = make([]int, classes)
	sums := make([]int, classes)
	for k := range correct {
		for c := 0; c < classes; c++ {
			sums[c] += correct[k][c]
			counts[c] += total[k][c]
		}
	}
	for c := 0; c < classes; c++ {
		if counts[c] > 0 {
			acc[c] = float64(sums[c]) / float64(counts[c])
		}
	}
	return acc, counts
}

// GradVariance returns the empirical dissimilarity measure the paper plots
// (Figures 2, 6, 8, 12):
//
//	E_k ‖∇F_k(w) − ∇f(w)‖²  with E_k weighted by p_k = n_k/n,
//
// which lower-bounds the B-dissimilarity via Corollary 10.
func GradVariance(m model.Model, fed *data.Federated, w []float64) float64 {
	v, _ := Dissimilarity(m, fed, w)
	return v
}

// Dissimilarity returns the gradient variance E_k‖∇F_k(w) − ∇f(w)‖² and
// the B(w) estimate of Definition 3,
//
//	B(w) = sqrt( E_k‖∇F_k(w)‖² / ‖∇f(w)‖² ),
//
// with B(w) defined as 1 at points where the two coincide (the paper's
// stationarity convention) and 0 reported when ‖∇f(w)‖ is numerically
// zero without agreement.
func Dissimilarity(m model.Model, fed *data.Federated, w []float64) (variance, b float64) {
	return FleetDissimilarity(m, fed.Fleet(), w)
}

// FleetDissimilarity is Dissimilarity over a lazy fleet. Shards are
// transient, but the per-device gradients are not: ∇f(w) needs every
// ∇F_k(w), so this holds O(N × params) floats and is meant for the
// tracked-dissimilarity configurations (tens to hundreds of devices),
// not million-device sweeps — which reject TrackGamma anyway.
func FleetDissimilarity(m model.Model, fl data.Fleet, w []float64) (variance, b float64) {
	weights := data.FleetWeights(fl)
	n := fl.NumDevices()
	grads := make([][]float64, n)
	forEachShard(n, func(k int) {
		g := make([]float64, m.NumParams())
		s := fl.Shard(k)
		m.Grad(g, w, s.Train)
		fl.Release(k)
		grads[k] = g
	})
	// ∇f(w) = Σ p_k ∇F_k(w).
	gf := make([]float64, m.NumParams())
	for k, g := range grads {
		tensor.Axpy(weights[k], g, gf)
	}
	normF2 := tensor.Dot(gf, gf)
	exp2 := 0.0 // E_k‖∇F_k‖²
	for k, g := range grads {
		exp2 += weights[k] * tensor.Dot(g, g)
		variance += weights[k] * tensor.SqDist(g, gf)
	}
	const eps = 1e-18
	switch {
	case exp2-normF2 < eps && normF2 < eps:
		b = 1 // stationary point all devices agree on
	case normF2 < eps:
		b = 0 // undefined; report 0 rather than +Inf
	default:
		b = math.Sqrt(exp2 / normF2)
	}
	return variance, b
}

// forEachShard runs fn(k) for k in [0, n) on a bounded worker pool.
func forEachShard(n int, fn func(k int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for k := 0; k < n; k++ {
			fn(k)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range next {
				fn(k)
			}
		}()
	}
	for k := 0; k < n; k++ {
		next <- k
	}
	close(next)
	wg.Wait()
}
