// Package datafile serializes federated datasets to disk, the equivalent
// of the LEAF benchmark's prepared data files the paper's experiments
// consume (Caldas et al., arXiv:1812.01097).
//
// A file carries the complete data.Federated value — shards, splits, and
// task metadata — so expensive generation runs once, every process in a
// distributed deployment reads identical bytes, and experiment inputs can
// be archived next to their outputs. The format is gob behind a magic
// header and version byte, like internal/checkpoint.
package datafile

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"

	"fedprox/internal/data"
)

const magic = "FEDPROXDATA"

const version = 1

type header struct {
	Magic   string
	Version int
}

// Write serializes the dataset to w. It validates first so no malformed
// dataset is ever persisted.
func Write(w io.Writer, fed *data.Federated) error {
	if err := fed.Validate(); err != nil {
		return fmt.Errorf("datafile: refusing to write invalid dataset: %w", err)
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header{Magic: magic, Version: version}); err != nil {
		return fmt.Errorf("datafile: write header: %w", err)
	}
	if err := enc.Encode(fed); err != nil {
		return fmt.Errorf("datafile: write dataset: %w", err)
	}
	return nil
}

// Read deserializes a dataset from r, verifying header and structure.
func Read(r io.Reader) (*data.Federated, error) {
	dec := gob.NewDecoder(r)
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("datafile: read header: %w", err)
	}
	if h.Magic != magic {
		return nil, errors.New("datafile: bad magic (not a dataset file)")
	}
	if h.Version != version {
		return nil, fmt.Errorf("datafile: version %d not supported (want %d)", h.Version, version)
	}
	var fed data.Federated
	if err := dec.Decode(&fed); err != nil {
		return nil, fmt.Errorf("datafile: read dataset: %w", err)
	}
	if err := fed.Validate(); err != nil {
		return nil, fmt.Errorf("datafile: file contains invalid dataset: %w", err)
	}
	return &fed, nil
}

// WriteFile writes the dataset to path atomically (temp file + rename).
func WriteFile(path string, fed *data.Federated) error {
	dir := "."
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			dir = path[:i]
			break
		}
	}
	tmp, err := os.CreateTemp(dir, ".data-*")
	if err != nil {
		return fmt.Errorf("datafile: temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriterSize(tmp, 1<<20)
	if err := Write(bw, fed); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("datafile: flush: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("datafile: close temp: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("datafile: rename: %w", err)
	}
	return nil
}

// ReadFile reads a dataset from path.
func ReadFile(path string) (*data.Federated, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("datafile: open: %w", err)
	}
	defer f.Close()
	return Read(bufio.NewReaderSize(f, 1<<20))
}
