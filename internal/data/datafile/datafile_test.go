package datafile

import (
	"bytes"
	"path/filepath"
	"testing"

	"fedprox/internal/data"
	"fedprox/internal/data/synthetic"
)

func sample() *data.Federated {
	return synthetic.Generate(synthetic.Default(0.5, 0.5).Scaled(0.12))
}

func TestRoundTrip(t *testing.T) {
	want := sample()
	var buf bytes.Buffer
	if err := Write(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != want.Name || got.NumDevices() != want.NumDevices() {
		t.Fatalf("metadata lost: %s/%d vs %s/%d", got.Name, got.NumDevices(), want.Name, want.NumDevices())
	}
	if got.TotalSamples() != want.TotalSamples() {
		t.Fatal("sample counts differ")
	}
	// Spot-check payload equality.
	a := want.Shards[3].Train[0]
	b := got.Shards[3].Train[0]
	if a.Y != b.Y {
		t.Fatal("labels differ after round trip")
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatal("features differ after round trip")
		}
	}
}

func TestSequenceRoundTrip(t *testing.T) {
	want := &data.Federated{
		Name: "seq", NumClasses: 4, VocabSize: 9, SeqLen: 3,
		Shards: []*data.Shard{{ID: 0, Train: []data.Example{{Seq: []int{1, 2, 3}, Y: 2}}}},
	}
	var buf bytes.Buffer
	if err := Write(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SeqLen != 3 || got.Shards[0].Train[0].Seq[2] != 3 {
		t.Fatal("sequence payload lost")
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &data.Federated{Name: "broken"}); err == nil {
		t.Fatal("invalid dataset written")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("garbage bytes here"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ds.fed")
	want := sample()
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalSamples() != want.TotalSamples() {
		t.Fatal("file round trip lost samples")
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.fed")); err == nil {
		t.Fatal("missing file accepted")
	}
}
