// Package shakespearesim provides the offline surrogate for the paper's
// Shakespeare workload: next-character prediction over an 80-character
// vocabulary, with one device per speaking role (143 devices) and
// sequences of 80 characters (Section 5.1, Appendix C.1).
//
// The real corpus is replaced by per-role character-level Markov
// generators. All roles share a global base transition matrix (so a single
// global model is learnable, matching the paper's premise that local
// distributions "are not entirely unrelated"), and each role mixes in its
// own random transition matrix with weight RoleSkew — the statistical
// heterogeneity knob. Text is emitted as a stream per role and cut into
// (sequence, next-character) examples, exactly the shape the paper's LSTM
// consumes.
package shakespearesim

import (
	"math"

	"fedprox/internal/data"
	"fedprox/internal/frand"
)

// Config parameterizes the generator.
type Config struct {
	// Devices is the number of speaking roles (paper: 143).
	Devices int
	// Vocab is the character vocabulary size (paper: 80).
	Vocab int
	// SeqLen is the input sequence length (paper: 80).
	SeqLen int
	// RoleSkew in [0,1] is the weight on each role's private transition
	// matrix; 0 makes all roles IID.
	RoleSkew float64
	// BranchFactor is how many successor characters each character favors
	// in the base chain; small values give text-like predictability.
	BranchFactor int
	// MinSamples and MaxSamples bound the power-law allocation of examples
	// per role.
	MinSamples, MaxSamples int
	// PowerAlpha is the power-law exponent.
	PowerAlpha float64
	// TrainFrac is the per-device train split.
	TrainFrac float64
	// Seed drives all randomness.
	Seed uint64
}

// Default returns the paper-shape configuration. Sample counts follow the
// paper's heavy skew (mean ≈ 3.6k, stdev ≈ 6.8k); use Scaled for runnable
// experiment sizes.
func Default() Config {
	return Config{
		Devices:      143,
		Vocab:        80,
		SeqLen:       80,
		RoleSkew:     0.5,
		BranchFactor: 4,
		MinSamples:   80,
		MaxSamples:   45000,
		PowerAlpha:   1.3,
		TrainFrac:    0.8,
		Seed:         3003,
	}
}

// Scaled returns a copy of c sized for fast experiment runs: sample bounds
// scaled by f and sequence length capped at maxSeq (0 keeps SeqLen).
func (c Config) Scaled(f float64, maxSeq int) Config {
	c.MinSamples = scaleFloor(c.MinSamples, f, 5)
	c.MaxSamples = scaleFloor(c.MaxSamples, f, c.MinSamples)
	if maxSeq > 0 && c.SeqLen > maxSeq {
		c.SeqLen = maxSeq
	}
	return c
}

func scaleFloor(n int, f float64, floor int) int {
	v := int(math.Round(float64(n) * f))
	if v < floor {
		v = floor
	}
	return v
}

// Generate builds the federated dataset described by c.
func Generate(c Config) *data.Federated {
	if c.Devices <= 0 || c.Vocab <= 1 || c.SeqLen <= 0 {
		panic("shakespearesim: invalid config")
	}
	root := frand.New(c.Seed)
	baseRng := root.Split("base-chain")
	sizeRng := root.Split("sizes")
	roleRng := root.Split("roles")
	splitRng := root.Split("split")

	base := transitionMatrix(baseRng, c.Vocab, c.BranchFactor)
	sizes := data.PowerLawSizes(sizeRng, c.Devices, c.MinSamples, c.MaxSamples, c.PowerAlpha)

	fed := &data.Federated{
		Name:       "Shakespeare",
		NumClasses: c.Vocab,
		VocabSize:  c.Vocab,
		SeqLen:     c.SeqLen,
	}
	for k := 0; k < c.Devices; k++ {
		rrng := roleRng.SplitIndex(k)
		private := transitionMatrix(rrng.Split("chain"), c.Vocab, c.BranchFactor)
		// Role transition = (1−skew)·base + skew·private.
		chain := mixChains(base, private, c.RoleSkew)

		// Emit one character stream long enough to cut sizes[k] examples.
		streamLen := sizes[k] + c.SeqLen
		stream := make([]int, streamLen)
		state := rrng.Intn(c.Vocab)
		gen := rrng.Split("stream")
		for i := range stream {
			stream[i] = state
			state = gen.Categorical(chain[state])
		}
		examples := make([]data.Example, sizes[k])
		for i := range examples {
			examples[i] = data.Example{
				Seq: stream[i : i+c.SeqLen],
				Y:   stream[i+c.SeqLen],
			}
		}
		train, test := data.SplitTrainTest(examples, c.TrainFrac, splitRng.SplitIndex(k))
		fed.Shards = append(fed.Shards, &data.Shard{ID: k, Train: train, Test: test})
	}
	if err := fed.Validate(); err != nil {
		panic(err)
	}
	return fed
}

// transitionMatrix draws a sparse-ish row-stochastic matrix: each character
// strongly favors branch successors and keeps a small uniform floor so
// every transition has support.
func transitionMatrix(rng *frand.Source, vocab, branch int) [][]float64 {
	m := make([][]float64, vocab)
	for i := range m {
		row := make([]float64, vocab)
		const floor = 0.02
		for j := range row {
			row[j] = floor
		}
		crng := rng.SplitIndex(i)
		for b := 0; b < branch; b++ {
			row[crng.Intn(vocab)] += 1 + 2*crng.Float64()
		}
		normalize(row)
		m[i] = row
	}
	return m
}

func mixChains(a, b [][]float64, w float64) [][]float64 {
	out := make([][]float64, len(a))
	for i := range a {
		row := make([]float64, len(a[i]))
		for j := range row {
			row[j] = (1-w)*a[i][j] + w*b[i][j]
		}
		normalize(row)
		out[i] = row
	}
	return out
}

func normalize(row []float64) {
	total := 0.0
	for _, v := range row {
		total += v
	}
	for j := range row {
		row[j] /= total
	}
}
