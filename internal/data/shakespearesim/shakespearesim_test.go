package shakespearesim

import (
	"math"
	"testing"

	"fedprox/internal/frand"
)

func testConfig() Config {
	c := Default()
	c.Devices = 12
	c.MinSamples = 10
	c.MaxSamples = 60
	c.SeqLen = 8
	return c
}

func TestGenerateShape(t *testing.T) {
	fed := Generate(testConfig())
	if fed.NumDevices() != 12 || fed.VocabSize != 80 || fed.SeqLen != 8 {
		t.Fatalf("shape: %d devices, vocab %d, seq %d", fed.NumDevices(), fed.VocabSize, fed.SeqLen)
	}
	if fed.NumClasses != 80 {
		t.Fatalf("next-char task must have vocab-sized label space, got %d", fed.NumClasses)
	}
	if err := fed.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExamplesAreSlidingWindows(t *testing.T) {
	fed := Generate(testConfig())
	// Consecutive examples within a device come from one stream: example
	// i+1's sequence is example i's sequence shifted by one with i's label
	// appended.
	s := fed.Shards[0]
	// Train order is shuffled by the split, so check the window-overlap
	// invariant as a multiset property: most sequences' one-shifted suffix
	// appears as another sequence's prefix (exceptions are windows whose
	// successor landed in the test split or the stream tail).
	prefixes := map[string]bool{}
	key := func(seq []int) string {
		b := make([]byte, len(seq))
		for i, v := range seq {
			b[i] = byte(v)
		}
		return string(b)
	}
	for _, ex := range s.Train {
		prefixes[key(ex.Seq[:len(ex.Seq)-1])] = true
	}
	hits := 0
	for _, ex := range s.Train {
		if prefixes[key(ex.Seq[1:])] {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("no overlapping windows found; stream construction broken")
	}
}

func TestDeterministic(t *testing.T) {
	a, b := Generate(testConfig()), Generate(testConfig())
	if a.Shards[2].Train[0].Y != b.Shards[2].Train[0].Y {
		t.Fatal("generation not deterministic")
	}
	for i, v := range a.Shards[2].Train[0].Seq {
		if b.Shards[2].Train[0].Seq[i] != v {
			t.Fatal("sequences differ across identical configs")
		}
	}
}

func TestRoleSkewChangesDistributions(t *testing.T) {
	// Character frequency histograms should differ more between roles when
	// RoleSkew is high.
	spread := func(skew float64) float64 {
		c := testConfig()
		c.RoleSkew = skew
		c.MinSamples, c.MaxSamples = 200, 400
		fed := Generate(c)
		hists := make([][]float64, len(fed.Shards))
		for k, s := range fed.Shards {
			h := make([]float64, fed.VocabSize)
			n := 0.0
			for _, ex := range s.Train {
				for _, tok := range ex.Seq {
					h[tok]++
					n++
				}
			}
			for j := range h {
				h[j] /= n
			}
			hists[k] = h
		}
		total, pairs := 0.0, 0
		for i := range hists {
			for j := i + 1; j < len(hists); j++ {
				d := 0.0
				for c := range hists[i] {
					d += math.Abs(hists[i][c] - hists[j][c])
				}
				total += d
				pairs++
			}
		}
		return total / float64(pairs)
	}
	lo, hi := spread(0.02), spread(0.9)
	if hi <= lo {
		t.Fatalf("role skew has no effect: spread(0.02)=%g spread(0.9)=%g", lo, hi)
	}
}

func TestTransitionMatrixRowStochastic(t *testing.T) {
	m := transitionMatrix(frand.New(17), 20, 3)
	for i, row := range m {
		sum := 0.0
		for _, v := range row {
			if v < 0 {
				t.Fatalf("negative transition prob at row %d", i)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %g", i, sum)
		}
	}
}

func TestScaledCapsSeqLen(t *testing.T) {
	c := Default().Scaled(0.01, 16)
	if c.SeqLen != 16 {
		t.Fatalf("SeqLen = %d, want 16", c.SeqLen)
	}
	if c.MinSamples < 5 || c.MaxSamples < c.MinSamples {
		t.Fatalf("bounds invalid: %d..%d", c.MinSamples, c.MaxSamples)
	}
	// maxSeq 0 keeps the original.
	if got := Default().Scaled(1, 0).SeqLen; got != 80 {
		t.Fatalf("SeqLen = %d, want 80", got)
	}
}

func TestPanicsOnInvalidConfig(t *testing.T) {
	c := testConfig()
	c.Vocab = 1
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	Generate(c)
}
