package sent140sim

import (
	"math"
	"testing"

	"fedprox/internal/frand"
)

func testConfig() Config {
	c := Default()
	c.Devices = 25
	c.MinSamples = 10
	c.MaxSamples = 40
	c.SeqLen = 10
	return c
}

func TestGenerateShape(t *testing.T) {
	fed := Generate(testConfig())
	if fed.NumDevices() != 25 || fed.NumClasses != 2 || fed.SeqLen != 10 {
		t.Fatalf("shape: %d devices, %d classes, seq %d", fed.NumDevices(), fed.NumClasses, fed.SeqLen)
	}
	if err := fed.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministic(t *testing.T) {
	a, b := Generate(testConfig()), Generate(testConfig())
	if a.Shards[4].Train[0].Y != b.Shards[4].Train[0].Y {
		t.Fatal("labels differ across identical configs")
	}
	for i, v := range a.Shards[4].Train[0].Seq {
		if b.Shards[4].Train[0].Seq[i] != v {
			t.Fatal("sequences differ across identical configs")
		}
	}
}

// TestLexiconPredictsLabel checks the generator's learnability contract:
// counting positive vs negative lexicon tokens should classify well above
// chance (the LSTM can only do better).
func TestLexiconPredictsLabel(t *testing.T) {
	c := testConfig()
	fed := Generate(c)
	correct, total := 0, 0
	for _, s := range fed.Shards {
		for _, ex := range s.Train {
			pos, neg := 0, 0
			for _, tok := range ex.Seq {
				switch {
				case tok < c.LexiconSize:
					pos++
				case tok < 2*c.LexiconSize:
					neg++
				}
			}
			pred := 0
			if pos > neg {
				pred = 1
			}
			if pos != neg {
				total++
				if pred == ex.Y {
					correct++
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no polarized tweets generated")
	}
	if acc := float64(correct) / float64(total); acc < 0.8 {
		t.Fatalf("lexicon-count accuracy = %g, want >= 0.8", acc)
	}
}

func TestBothLabelsPresent(t *testing.T) {
	fed := Generate(testConfig())
	seen := map[int]int{}
	for _, s := range fed.Shards {
		for _, ex := range s.Train {
			seen[ex.Y]++
		}
	}
	if seen[0] == 0 || seen[1] == 0 {
		t.Fatalf("label distribution degenerate: %v", seen)
	}
}

func TestAccountHeterogeneity(t *testing.T) {
	// Different accounts should favor different neutral tokens.
	c := testConfig()
	c.MinSamples, c.MaxSamples = 60, 80
	fed := Generate(c)
	top := func(k int) int {
		counts := map[int]int{}
		for _, ex := range fed.Shards[k].Train {
			for _, tok := range ex.Seq {
				if tok >= 2*c.LexiconSize {
					counts[tok]++
				}
			}
		}
		best, bestN := -1, -1
		for tok, n := range counts {
			if n > bestN {
				best, bestN = tok, n
			}
		}
		return best
	}
	distinct := map[int]bool{}
	for k := 0; k < fed.NumDevices(); k++ {
		distinct[top(k)] = true
	}
	if len(distinct) < 3 {
		t.Fatalf("accounts share top tokens too much: %d distinct among %d devices", len(distinct), fed.NumDevices())
	}
}

func TestScaledAdjustsEverything(t *testing.T) {
	c := Default().Scaled(0.05, 12)
	if c.Devices < 20 {
		t.Fatalf("devices floor violated: %d", c.Devices)
	}
	if c.SeqLen != 12 {
		t.Fatalf("SeqLen = %d", c.SeqLen)
	}
}

func TestPanicsOnInvalidConfig(t *testing.T) {
	c := testConfig()
	c.Vocab = c.LexiconSize // vocab must exceed 2×lexicon
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	Generate(c)
}

func TestTopicWeightsNormalized(t *testing.T) {
	w := topicWeights(frand.New(9), 50, 0.3)
	sum := 0.0
	for _, v := range w {
		if v < 0 {
			t.Fatal("negative topic weight")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("topic weights sum to %g", sum)
	}
}
