// Package sent140sim provides the offline surrogate for the paper's
// Sent140 workload: binary tweet-sentiment classification with one device
// per Twitter account (772 devices) and an LSTM over a fixed-length token
// sequence (Section 5.1, Appendix C.1).
//
// Real tweets and pretrained GloVe embeddings are replaced by synthetic
// token streams: the vocabulary is split into positive-lexicon,
// negative-lexicon, and neutral tokens; each account has its own topic
// distribution over neutral tokens (the per-device drift the paper relies
// on) and its own positivity rate. A tweet's label is the sign of its net
// lexicon polarity, with token-level noise so the task is learnable but
// not trivial. Embeddings are learned by the model instead of loaded from
// GloVe (offline constraint; DESIGN.md §4).
package sent140sim

import (
	"math"

	"fedprox/internal/data"
	"fedprox/internal/frand"
)

// Config parameterizes the generator.
type Config struct {
	// Devices is the number of Twitter accounts (paper: 772).
	Devices int
	// Vocab is the token vocabulary size.
	Vocab int
	// LexiconSize is the number of positive tokens (an equal number are
	// negative; the rest are neutral).
	LexiconSize int
	// SeqLen is the tokens-per-tweet input length (paper: 25).
	SeqLen int
	// PolarityRate is the fraction of tokens in a tweet drawn from the
	// label's lexicon rather than the account's neutral topics.
	PolarityRate float64
	// NoiseRate is the fraction of lexicon draws flipped to the opposite
	// lexicon, bounding achievable accuracy below 100%.
	NoiseRate float64
	// TopicConcentration controls per-account topic skew over neutral
	// tokens: smaller values give spikier, more heterogeneous accounts.
	TopicConcentration float64
	// MinSamples and MaxSamples bound per-account tweet counts.
	MinSamples, MaxSamples int
	// PowerAlpha is the power-law exponent.
	PowerAlpha float64
	// TrainFrac is the per-device train split.
	TrainFrac float64
	// Seed drives all randomness.
	Seed uint64
}

// Default returns the paper-shape configuration: 772 accounts, ~53 tweets
// per account, 25-token tweets.
func Default() Config {
	return Config{
		Devices:            772,
		Vocab:              400,
		LexiconSize:        40,
		SeqLen:             25,
		PolarityRate:       0.35,
		NoiseRate:          0.08,
		TopicConcentration: 0.3,
		MinSamples:         25,
		MaxSamples:         200,
		PowerAlpha:         2.4,
		TrainFrac:          0.8,
		Seed:               4004,
	}
}

// Scaled returns a copy of c sized for fast runs: device count and sample
// bounds scaled by f and sequence length capped at maxSeq (0 keeps SeqLen).
func (c Config) Scaled(f float64, maxSeq int) Config {
	c.Devices = scaleFloor(c.Devices, f, 20)
	c.MinSamples = scaleFloor(c.MinSamples, f, 5)
	c.MaxSamples = scaleFloor(c.MaxSamples, f, c.MinSamples)
	if maxSeq > 0 && c.SeqLen > maxSeq {
		c.SeqLen = maxSeq
	}
	return c
}

func scaleFloor(n int, f float64, floor int) int {
	v := int(math.Round(float64(n) * f))
	if v < floor {
		v = floor
	}
	return v
}

// Generate builds the federated dataset described by c.
func Generate(c Config) *data.Federated {
	if c.Devices <= 0 || c.Vocab <= 2*c.LexiconSize || c.SeqLen <= 0 {
		panic("sent140sim: invalid config")
	}
	root := frand.New(c.Seed)
	sizeRng := root.Split("sizes")
	accountRng := root.Split("accounts")
	splitRng := root.Split("split")

	sizes := data.PowerLawSizes(sizeRng, c.Devices, c.MinSamples, c.MaxSamples, c.PowerAlpha)
	neutralLo := 2 * c.LexiconSize // tokens [0,L) positive, [L,2L) negative
	numNeutral := c.Vocab - neutralLo

	fed := &data.Federated{
		Name:       "Sent140",
		NumClasses: 2,
		VocabSize:  c.Vocab,
		SeqLen:     c.SeqLen,
	}
	for k := 0; k < c.Devices; k++ {
		arng := accountRng.SplitIndex(k)
		topics := topicWeights(arng.Split("topics"), numNeutral, c.TopicConcentration)
		// Account-level class balance in [0.25, 0.75]: accounts lean
		// positive or negative, another axis of heterogeneity.
		posRate := 0.25 + 0.5*arng.Float64()

		gen := arng.Split("tweets")
		examples := make([]data.Example, sizes[k])
		for i := range examples {
			y := 0
			if gen.Bernoulli(posRate) {
				y = 1
			}
			seq := make([]int, c.SeqLen)
			for t := range seq {
				if gen.Bernoulli(c.PolarityRate) {
					lex := y // 1 → positive lexicon, 0 → negative
					if gen.Bernoulli(c.NoiseRate) {
						lex = 1 - lex
					}
					if lex == 1 {
						seq[t] = gen.Intn(c.LexiconSize)
					} else {
						seq[t] = c.LexiconSize + gen.Intn(c.LexiconSize)
					}
				} else {
					seq[t] = neutralLo + gen.Categorical(topics)
				}
			}
			examples[i] = data.Example{Seq: seq, Y: y}
		}
		train, test := data.SplitTrainTest(examples, c.TrainFrac, splitRng.SplitIndex(k))
		fed.Shards = append(fed.Shards, &data.Shard{ID: k, Train: train, Test: test})
	}
	if err := fed.Validate(); err != nil {
		panic(err)
	}
	return fed
}

// topicWeights draws a spiky categorical distribution over n neutral
// tokens. Smaller concentration produces spikier (more account-specific)
// distributions; weights are samples from a symmetric Dirichlet
// approximated by normalized Gamma(concentration) draws via the
// Marsaglia-Tsang-free exponential-power trick adequate for simulation.
func topicWeights(rng *frand.Source, n int, concentration float64) []float64 {
	w := make([]float64, n)
	total := 0.0
	for i := range w {
		// Gamma(a) for small a via Ahrens-Dieter-style transform:
		// X = U^(1/a) · Exp(1) has the right small-a tail behaviour for
		// producing spiky normalized weights. Exact Dirichlet sampling is
		// unnecessary here; only the skew profile matters.
		u := rng.Float64()
		e := -math.Log(1 - rng.Float64())
		w[i] = math.Pow(u, 1/concentration) * e
		total += w[i]
	}
	if total <= 0 {
		// Degenerate draw; fall back to uniform.
		for i := range w {
			w[i] = 1 / float64(n)
		}
		return w
	}
	for i := range w {
		w[i] /= total
	}
	return w
}
