// Package data defines the federated dataset substrate: per-device shards,
// train/test splits, mini-batching, and the summary statistics reported in
// Table 1 of the paper.
//
// A federated dataset is a set of device shards. Each shard holds the
// examples generated or collected by one device, split 80/20 into local
// train and test sets exactly as in the paper's protocol (Appendix C.2).
// Examples carry either a dense feature vector (convex workloads: the
// synthetic suite, MNIST, FEMNIST) or a token sequence (LSTM workloads:
// Shakespeare, Sent140).
package data

import (
	"fmt"
	"math"

	"fedprox/internal/frand"
)

// Example is a single labeled training example. Exactly one of X and Seq is
// populated, depending on the task family.
type Example struct {
	// X is the dense feature vector for vector-input tasks.
	X []float64
	// Seq is the token-index sequence for sequence-input tasks.
	Seq []int
	// Y is the class label (the next character, for next-char prediction).
	Y int
}

// Shard is one device's local dataset.
type Shard struct {
	// ID is the device index within the federated dataset.
	ID int
	// Train and Test are the device's local 80/20 split.
	Train, Test []Example
}

// NumSamples returns the total number of local examples (train + test).
func (s *Shard) NumSamples() int { return len(s.Train) + len(s.Test) }

// Federated is a complete federated dataset: one shard per device plus the
// task metadata models need to size themselves.
type Federated struct {
	// Name identifies the dataset in experiment output (e.g. "MNIST").
	Name string
	// Shards holds one entry per device.
	Shards []*Shard
	// NumClasses is the size of the label space.
	NumClasses int
	// FeatureDim is the dense input dimension (0 for sequence tasks).
	FeatureDim int
	// VocabSize is the token vocabulary size (0 for dense tasks).
	VocabSize int
	// SeqLen is the fixed input sequence length (0 for dense tasks).
	SeqLen int
}

// NumDevices returns the number of devices in the network.
func (f *Federated) NumDevices() int { return len(f.Shards) }

// TotalSamples returns the number of examples across all devices.
func (f *Federated) TotalSamples() int {
	n := 0
	for _, s := range f.Shards {
		n += s.NumSamples()
	}
	return n
}

// TrainSizes returns n_k (the local training-set size) for every device.
// These are the weights p_k = n_k/n in the global objective (Equation 1).
func (f *Federated) TrainSizes() []int {
	out := make([]int, len(f.Shards))
	for i, s := range f.Shards {
		out[i] = len(s.Train)
	}
	return out
}

// Weights returns the normalized objective weights p_k = n_k/n computed
// over local training sizes.
func (f *Federated) Weights() []float64 {
	sizes := f.TrainSizes()
	total := 0
	for _, n := range sizes {
		total += n
	}
	out := make([]float64, len(sizes))
	for i, n := range sizes {
		out[i] = float64(n) / float64(total)
	}
	return out
}

// Stats summarizes a federated dataset in the shape of the paper's Table 1.
type Stats struct {
	Name        string
	Devices     int
	Samples     int
	MeanPerDev  float64
	StdevPerDev float64
}

// ComputeStats returns the Table 1 row for f.
func (f *Federated) ComputeStats() Stats {
	n := len(f.Shards)
	total := 0
	for _, s := range f.Shards {
		total += s.NumSamples()
	}
	mean := float64(total) / float64(n)
	varSum := 0.0
	for _, s := range f.Shards {
		d := float64(s.NumSamples()) - mean
		varSum += d * d
	}
	std := 0.0
	if n > 1 {
		std = math.Sqrt(varSum / float64(n-1))
	}
	return Stats{Name: f.Name, Devices: n, Samples: total, MeanPerDev: mean, StdevPerDev: std}
}

// String renders the stats as a Table 1 row.
func (st Stats) String() string {
	return fmt.Sprintf("%-12s devices=%-5d samples=%-7d mean=%.0f stdev=%.0f",
		st.Name, st.Devices, st.Samples, st.MeanPerDev, st.StdevPerDev)
}

// SplitTrainTest splits examples into train and test sets with the given
// training fraction, after a deterministic shuffle driven by rng. The paper
// uses trainFrac = 0.8 on every device.
func SplitTrainTest(examples []Example, trainFrac float64, rng *frand.Source) (train, test []Example) {
	if trainFrac < 0 || trainFrac > 1 {
		panic("data: trainFrac out of [0,1]")
	}
	idx := rng.Perm(len(examples))
	nTrain := int(math.Round(trainFrac * float64(len(examples))))
	// Keep at least one example on each side when possible so every device
	// contributes to both global training loss and test accuracy.
	if nTrain == len(examples) && len(examples) > 1 {
		nTrain--
	}
	if nTrain == 0 && len(examples) > 1 {
		nTrain = 1
	}
	train = make([]Example, 0, nTrain)
	test = make([]Example, 0, len(examples)-nTrain)
	for i, j := range idx {
		if i < nTrain {
			train = append(train, examples[j])
		} else {
			test = append(test, examples[j])
		}
	}
	return train, test
}

// Batches partitions indices of a training set into mini-batches of size
// batchSize, in an order determined by rng. The final batch may be smaller.
// The paper uses batchSize = 10 everywhere.
func Batches(n, batchSize int, rng *frand.Source) [][]int {
	if batchSize <= 0 {
		panic("data: non-positive batch size")
	}
	idx := rng.Perm(n)
	var out [][]int
	for start := 0; start < n; start += batchSize {
		end := start + batchSize
		if end > n {
			end = n
		}
		out = append(out, idx[start:end])
	}
	return out
}

// PowerLawSizes allocates per-device sample counts following a power law,
// the allocation scheme shared by every dataset generator in this
// repository ("the number of samples per device follows a power law").
// Sizes are drawn i.i.d. from a discrete Pareto on [min, max] with the
// given exponent.
func PowerLawSizes(rng *frand.Source, devices, min, max int, alpha float64) []int {
	out := make([]int, devices)
	for i := range out {
		out[i] = rng.PowerLaw(min, max, alpha)
	}
	return out
}

// LabelSkewAssign assigns classesPerDevice distinct class labels to each of
// devices devices, cycling through the label space so every class is used.
// This reproduces the paper's label-skew partitions: MNIST gives each
// device samples of only 2 digits; FEMNIST gives each device 5 of 10
// classes.
func LabelSkewAssign(rng *frand.Source, devices, numClasses, classesPerDevice int) [][]int {
	if classesPerDevice > numClasses {
		panic("data: classesPerDevice exceeds numClasses")
	}
	out := make([][]int, devices)
	next := 0
	for d := 0; d < devices; d++ {
		classes := make([]int, classesPerDevice)
		for c := range classes {
			classes[c] = next % numClasses
			next++
		}
		// Shuffle within the device so class order carries no signal.
		rng.Shuffle(classes)
		out[d] = classes
	}
	return out
}

// Validate performs structural sanity checks on a federated dataset and
// returns a descriptive error for the first violation found. Generators
// call this before returning.
func (f *Federated) Validate() error {
	if len(f.Shards) == 0 {
		return fmt.Errorf("data: %s has no shards", f.Name)
	}
	dense := f.FeatureDim > 0
	seq := f.VocabSize > 0
	if dense == seq {
		return fmt.Errorf("data: %s must be exactly one of dense or sequence", f.Name)
	}
	for _, s := range f.Shards {
		if len(s.Train) == 0 {
			return fmt.Errorf("data: %s device %d has empty training set", f.Name, s.ID)
		}
		for _, ex := range append(append([]Example{}, s.Train...), s.Test...) {
			if ex.Y < 0 || ex.Y >= f.NumClasses {
				return fmt.Errorf("data: %s device %d label %d out of range", f.Name, s.ID, ex.Y)
			}
			if dense && len(ex.X) != f.FeatureDim {
				return fmt.Errorf("data: %s device %d feature dim %d != %d", f.Name, s.ID, len(ex.X), f.FeatureDim)
			}
			if seq {
				if len(ex.Seq) != f.SeqLen {
					return fmt.Errorf("data: %s device %d seq len %d != %d", f.Name, s.ID, len(ex.Seq), f.SeqLen)
				}
				for _, t := range ex.Seq {
					if t < 0 || t >= f.VocabSize {
						return fmt.Errorf("data: %s device %d token %d out of range", f.Name, s.ID, t)
					}
				}
			}
		}
	}
	return nil
}
