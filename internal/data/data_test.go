package data

import (
	"math"
	"testing"
	"testing/quick"

	"fedprox/internal/frand"
)

func denseExamples(n, dim, classes int, rng *frand.Source) []Example {
	out := make([]Example, n)
	for i := range out {
		out[i] = Example{X: rng.NormVec(make([]float64, dim), 0, 1), Y: rng.Intn(classes)}
	}
	return out
}

func TestSplitTrainTestPartition(t *testing.T) {
	rng := frand.New(1)
	f := func(a uint8) bool {
		n := int(a%100) + 2
		ex := denseExamples(n, 3, 2, rng)
		train, test := SplitTrainTest(ex, 0.8, rng.SplitIndex(int(a)))
		if len(train)+len(test) != n {
			return false
		}
		// Both sides non-empty when n > 1.
		return len(train) > 0 && len(test) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitTrainTestFraction(t *testing.T) {
	rng := frand.New(2)
	ex := denseExamples(100, 2, 2, rng)
	train, test := SplitTrainTest(ex, 0.8, rng)
	if len(train) != 80 || len(test) != 20 {
		t.Fatalf("split = %d/%d, want 80/20", len(train), len(test))
	}
}

func TestSplitTrainTestDeterministic(t *testing.T) {
	rng := frand.New(3)
	ex := denseExamples(50, 2, 2, rng)
	t1, _ := SplitTrainTest(ex, 0.8, frand.New(9))
	t2, _ := SplitTrainTest(ex, 0.8, frand.New(9))
	for i := range t1 {
		if t1[i].Y != t2[i].Y || t1[i].X[0] != t2[i].X[0] {
			t.Fatal("split not deterministic under equal seeds")
		}
	}
}

func TestSplitTrainTestPanicsOnBadFrac(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad fraction did not panic")
		}
	}()
	SplitTrainTest(nil, 1.5, frand.New(1))
}

func TestBatchesCoverEveryIndexOnce(t *testing.T) {
	rng := frand.New(5)
	f := func(a, b uint8) bool {
		n := int(a%200) + 1
		bs := int(b%16) + 1
		seen := make([]int, n)
		for _, batch := range Batches(n, bs, rng) {
			if len(batch) == 0 || len(batch) > bs {
				return false
			}
			for _, i := range batch {
				seen[i]++
			}
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBatchesLastShort(t *testing.T) {
	rng := frand.New(7)
	bs := Batches(25, 10, rng)
	if len(bs) != 3 || len(bs[2]) != 5 {
		t.Fatalf("Batches(25,10): %d batches, last %d", len(bs), len(bs[len(bs)-1]))
	}
}

func TestBatchesPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Batches(1, 0) did not panic")
		}
	}()
	Batches(1, 0, frand.New(1))
}

func TestPowerLawSizesBounds(t *testing.T) {
	rng := frand.New(9)
	sizes := PowerLawSizes(rng, 500, 10, 100, 1.5)
	if len(sizes) != 500 {
		t.Fatalf("len = %d", len(sizes))
	}
	for _, s := range sizes {
		if s < 10 || s > 100 {
			t.Fatalf("size %d out of [10,100]", s)
		}
	}
}

func TestLabelSkewAssignCoversAllClasses(t *testing.T) {
	rng := frand.New(11)
	assign := LabelSkewAssign(rng, 100, 10, 2)
	seen := make([]bool, 10)
	for d, classes := range assign {
		if len(classes) != 2 {
			t.Fatalf("device %d has %d classes", d, len(classes))
		}
		for _, c := range classes {
			if c < 0 || c >= 10 {
				t.Fatalf("class %d out of range", c)
			}
			seen[c] = true
		}
	}
	for c, ok := range seen {
		if !ok {
			t.Fatalf("class %d never assigned", c)
		}
	}
}

func TestLabelSkewAssignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("classesPerDevice > numClasses did not panic")
		}
	}()
	LabelSkewAssign(frand.New(1), 10, 3, 5)
}

func buildFed(devices, perDev int) *Federated {
	rng := frand.New(13)
	fed := &Federated{Name: "toy", NumClasses: 3, FeatureDim: 4}
	for d := 0; d < devices; d++ {
		ex := denseExamples(perDev, 4, 3, rng)
		train, test := SplitTrainTest(ex, 0.8, rng.SplitIndex(d))
		fed.Shards = append(fed.Shards, &Shard{ID: d, Train: train, Test: test})
	}
	return fed
}

func TestFederatedAccounting(t *testing.T) {
	fed := buildFed(5, 20)
	if fed.NumDevices() != 5 {
		t.Fatalf("NumDevices = %d", fed.NumDevices())
	}
	if fed.TotalSamples() != 100 {
		t.Fatalf("TotalSamples = %d", fed.TotalSamples())
	}
	sizes := fed.TrainSizes()
	total := 0
	for _, n := range sizes {
		total += n
	}
	ws := fed.Weights()
	sum := 0.0
	for i, w := range ws {
		if math.Abs(w-float64(sizes[i])/float64(total)) > 1e-12 {
			t.Fatalf("weight %d = %g", i, w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum to %g", sum)
	}
}

func TestComputeStats(t *testing.T) {
	fed := buildFed(4, 25)
	st := fed.ComputeStats()
	if st.Devices != 4 || st.Samples != 100 {
		t.Fatalf("stats: %+v", st)
	}
	if st.MeanPerDev != 25 || st.StdevPerDev != 0 {
		t.Fatalf("uniform shards: mean=%g std=%g", st.MeanPerDev, st.StdevPerDev)
	}
	if st.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	good := buildFed(2, 10)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	cases := []func(*Federated){
		func(f *Federated) { f.Shards = nil },
		func(f *Federated) { f.FeatureDim = 0 },                             // neither dense nor seq
		func(f *Federated) { f.VocabSize = 5 },                              // both dense and seq
		func(f *Federated) { f.Shards[0].Train = nil },                      // empty train
		func(f *Federated) { f.Shards[0].Train[0].Y = 99 },                  // label range
		func(f *Federated) { f.Shards[0].Train[0].X = []float64{1} },        // dim
		func(f *Federated) { f.Shards[1].Test[0].Y = -1 },                   // test label
		func(f *Federated) { f.Shards[1].Test[0].X = make([]float64, 400) }, // test dim
	}
	for i, mutate := range cases {
		f := buildFed(2, 10)
		mutate(f)
		if err := f.Validate(); err == nil {
			t.Errorf("case %d: corrupted dataset passed validation", i)
		}
	}
}

func TestValidateSequenceChecks(t *testing.T) {
	fed := &Federated{
		Name: "seq", NumClasses: 4, VocabSize: 6, SeqLen: 3,
		Shards: []*Shard{{Train: []Example{{Seq: []int{0, 1, 2}, Y: 1}}}},
	}
	if err := fed.Validate(); err != nil {
		t.Fatalf("valid sequence dataset rejected: %v", err)
	}
	fed.Shards[0].Train[0].Seq = []int{0, 1} // wrong length
	if err := fed.Validate(); err == nil {
		t.Fatal("wrong sequence length passed")
	}
	fed.Shards[0].Train[0].Seq = []int{0, 1, 9} // token out of range
	if err := fed.Validate(); err == nil {
		t.Fatal("out-of-range token passed")
	}
}

func TestShardNumSamples(t *testing.T) {
	s := &Shard{Train: make([]Example, 3), Test: make([]Example, 2)}
	if s.NumSamples() != 5 {
		t.Fatalf("NumSamples = %d", s.NumSamples())
	}
}
