// Package femnistsim provides the offline surrogate for the paper's
// FEMNIST workload: the authors subsample 10 lower-case characters
// ('a'-'j') from EMNIST, distribute 5 classes to each of 200 devices, and
// train multinomial logistic regression (Appendix C.1).
//
// Real EMNIST images are replaced by class-conditional Gaussian prototype
// images (internal/data/imagesim; DESIGN.md §4). FEMNIST's prototypes use
// more blobs and higher noise than the MNIST surrogate so the task is
// harder, mirroring the real datasets' relative difficulty.
package femnistsim

import (
	"fedprox/internal/data"
	"fedprox/internal/data/imagesim"
)

// Default returns the paper-shape configuration: 200 devices, 28×28 inputs,
// 5 of 10 classes per device, ~92 samples per device on average.
func Default() imagesim.Config {
	return imagesim.Config{
		Name:             "FEMNIST",
		Devices:          200,
		Classes:          10,
		ClassesPerDevice: 5,
		Side:             28,
		BlobsPerClass:    6,
		Noise:            0.55,
		DeviceSkew:       0.55,
		StyleBlobs:       4,
		MinSamples:       18,
		MaxSamples:       1400,
		PowerAlpha:       2.05,
		TrainFrac:        0.8,
		Seed:             2002,
	}
}

// Generate builds the FEMNIST surrogate at paper scale.
func Generate() *data.Federated { return imagesim.Generate(Default()) }

// GenerateScaled builds the FEMNIST surrogate with device count and sample
// bounds scaled by f, for fast experiment runs.
func GenerateScaled(f float64) *data.Federated {
	c := Default().Scaled(f)
	c.Devices = scaleDevices(c.Devices, f)
	return imagesim.Generate(c)
}

func scaleDevices(n int, f float64) int {
	v := int(float64(n) * f)
	if v < 20 {
		v = 20
	}
	return v
}
