package femnistsim

import "testing"

func TestScaledShape(t *testing.T) {
	fed := GenerateScaled(0.15)
	if fed.Name != "FEMNIST" {
		t.Fatalf("name = %q", fed.Name)
	}
	if fed.FeatureDim != 784 || fed.NumClasses != 10 {
		t.Fatalf("shape: dim=%d classes=%d", fed.FeatureDim, fed.NumClasses)
	}
	if err := fed.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFiveClassesPerDevice(t *testing.T) {
	fed := GenerateScaled(0.15)
	for _, s := range fed.Shards {
		classes := map[int]bool{}
		for _, ex := range s.Train {
			classes[ex.Y] = true
		}
		for _, ex := range s.Test {
			classes[ex.Y] = true
		}
		if len(classes) > 5 {
			t.Fatalf("device %d has %d classes, want <= 5", s.ID, len(classes))
		}
	}
}

func TestDefaultMatchesPaperScale(t *testing.T) {
	c := Default()
	if c.Devices != 200 || c.ClassesPerDevice != 5 {
		t.Fatalf("paper-scale config drifted: %+v", c)
	}
}
