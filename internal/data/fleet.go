package data

// Fleet is the lazy view of a federated population: it reports how many
// devices exist and what each device's training-set size is (the p_k =
// n_k/n weights of Equation 1 need only sizes), but materializes a
// device's actual examples only on demand. Drivers that touch a small
// cohort per round — the paper's regime, where K << N devices are
// active — can then hold per-round state that is O(cohort) while the
// population is 10^5–10^6.
//
// Shard must be safe for concurrent calls with distinct device indices
// (parallel solvers materialize their own shards). Release declares the
// caller is done with the shard from the matching Shard call; lazy
// implementations may recycle buffers, eager ones ignore it. After
// Release the shard must no longer be read.
type Fleet interface {
	// NumDevices returns the population size N.
	NumDevices() int
	// TrainSize returns n_k, device k's local training-set size,
	// without materializing the shard.
	TrainSize(device int) int
	// Shard materializes device k's local dataset.
	Shard(device int) *Shard
	// Release returns the shard obtained from Shard(device).
	Release(device int)
}

// eagerFleet adapts a fully materialized Federated dataset to the Fleet
// interface: every shard already exists, so Shard is a slice lookup and
// Release is a no-op.
type eagerFleet struct{ fed *Federated }

// Fleet returns the eager Fleet view of f. Existing datasets keep
// working against the Fleet-based drivers through this adapter; only
// generators that want O(cohort) memory implement Fleet natively.
func (f *Federated) Fleet() Fleet { return eagerFleet{fed: f} }

func (e eagerFleet) NumDevices() int          { return len(e.fed.Shards) }
func (e eagerFleet) TrainSize(device int) int { return len(e.fed.Shards[device].Train) }
func (e eagerFleet) Shard(device int) *Shard  { return e.fed.Shards[device] }
func (e eagerFleet) Release(int)              {}

// FleetWeights returns the normalized objective weights p_k = n_k/n for
// a fleet, computed from training sizes alone (no shards are
// materialized). For an eager fleet this matches Federated.Weights
// exactly.
func FleetWeights(fl Fleet) []float64 {
	n := fl.NumDevices()
	sizes := make([]int, n)
	total := 0
	for k := range sizes {
		sizes[k] = fl.TrainSize(k)
		total += sizes[k]
	}
	out := make([]float64, n)
	for k, s := range sizes {
		out[k] = float64(s) / float64(total)
	}
	return out
}
