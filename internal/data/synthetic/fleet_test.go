package synthetic

import (
	"math"
	"testing"

	"fedprox/internal/data"
)

func fleetTestConfig() Config {
	return Config{
		Alpha: 1, Beta: 1,
		Devices:    17,
		Dim:        6,
		Classes:    4,
		MinSamples: 5,
		MaxSamples: 40,
		PowerAlpha: 1.55,
		TrainFrac:  0.8,
		Seed:       42,
	}
}

// shardsEqual compares two shards bit for bit: every feature value must
// carry identical IEEE-754 bits, every label and split boundary must
// match.
func shardsEqual(a, b *data.Shard) bool {
	if a.ID != b.ID || len(a.Train) != len(b.Train) || len(a.Test) != len(b.Test) {
		return false
	}
	eq := func(p, q []data.Example) bool {
		for i := range p {
			if p[i].Y != q[i].Y || len(p[i].X) != len(q[i].X) {
				return false
			}
			for j := range p[i].X {
				if math.Float64bits(p[i].X[j]) != math.Float64bits(q[i].X[j]) {
					return false
				}
			}
		}
		return true
	}
	return eq(a.Train, b.Train) && eq(a.Test, b.Test)
}

// TestFleetMatchesGenerate is the lazy fleet's defining contract: for
// every device index, Shard(k) synthesized on demand is bit-identical
// to the shard the eager Generate produces at the same index, TrainSize
// predicts the split without materializing, and FleetWeights equals
// Federated.Weights.
func TestFleetMatchesGenerate(t *testing.T) {
	for _, iid := range []bool{false, true} {
		c := fleetTestConfig()
		c.IID = iid
		t.Run(c.Name(), func(t *testing.T) {
			fed := Generate(c)
			fl := NewFleet(c)
			if fl.NumDevices() != fed.NumDevices() {
				t.Fatalf("NumDevices %d != %d", fl.NumDevices(), fed.NumDevices())
			}
			for k := 0; k < fl.NumDevices(); k++ {
				if got, want := fl.TrainSize(k), len(fed.Shards[k].Train); got != want {
					t.Errorf("TrainSize(%d) = %d, want %d", k, got, want)
				}
				sh := fl.Shard(k)
				if !shardsEqual(sh, fed.Shards[k]) {
					t.Errorf("Shard(%d) differs from Generate", k)
				}
				fl.Release(k)
			}
			fw, ew := data.FleetWeights(fl), fed.Weights()
			for k := range ew {
				if math.Float64bits(fw[k]) != math.Float64bits(ew[k]) {
					t.Errorf("FleetWeights[%d] = %v, want %v", k, fw[k], ew[k])
				}
			}
		})
	}
}

// TestFleetShardIsPure: repeated and out-of-order materializations of
// the same index yield the same bits — Shard is a pure function of
// (config, index), which is what makes concurrent materialization safe.
func TestFleetShardIsPure(t *testing.T) {
	fl := NewFleet(fleetTestConfig())
	a := fl.Shard(11)
	fl.Shard(3) // interleaved access must not perturb stream state
	b := fl.Shard(11)
	if !shardsEqual(a, b) {
		t.Fatal("Shard(11) is not reproducible across calls")
	}
}

// TestEagerFleetAdapter: a materialized Federated viewed through Fleet
// reports the same sizes and shards by identity.
func TestEagerFleetAdapter(t *testing.T) {
	fed := Generate(fleetTestConfig())
	fl := fed.Fleet()
	if fl.NumDevices() != fed.NumDevices() {
		t.Fatalf("NumDevices %d != %d", fl.NumDevices(), fed.NumDevices())
	}
	for k := 0; k < fl.NumDevices(); k++ {
		if fl.Shard(k) != fed.Shards[k] {
			t.Fatalf("eager Shard(%d) is not the identical shard", k)
		}
		if fl.TrainSize(k) != len(fed.Shards[k].Train) {
			t.Fatalf("eager TrainSize(%d) mismatch", k)
		}
	}
}
