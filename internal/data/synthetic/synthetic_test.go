package synthetic

import (
	"math"
	"testing"

	"fedprox/internal/data"
)

func TestGenerateShape(t *testing.T) {
	fed := Generate(Default(1, 1).Scaled(0.2))
	if fed.NumDevices() != 30 {
		t.Fatalf("devices = %d, want 30", fed.NumDevices())
	}
	if fed.FeatureDim != 60 || fed.NumClasses != 10 {
		t.Fatalf("dims: %d features, %d classes", fed.FeatureDim, fed.NumClasses)
	}
	if err := fed.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Default(0.5, 0.5).Scaled(0.2))
	b := Generate(Default(0.5, 0.5).Scaled(0.2))
	for k := range a.Shards {
		if len(a.Shards[k].Train) != len(b.Shards[k].Train) {
			t.Fatal("shard sizes differ across identical configs")
		}
		for i := range a.Shards[k].Train {
			ea, eb := a.Shards[k].Train[i], b.Shards[k].Train[i]
			if ea.Y != eb.Y || ea.X[0] != eb.X[0] {
				t.Fatal("examples differ across identical configs")
			}
		}
	}
}

func TestSeedChangesData(t *testing.T) {
	c1 := Default(1, 1).Scaled(0.2)
	c2 := c1
	c2.Seed = 99
	a, b := Generate(c1), Generate(c2)
	same := true
	for i := range a.Shards[0].Train {
		if a.Shards[0].Train[i].X[0] != b.Shards[0].Train[i].X[0] {
			same = false
			break
		}
	}
	if same && len(a.Shards[0].Train) > 0 {
		t.Fatal("different seeds produced identical data")
	}
}

func TestIIDUsesAllClassesGlobally(t *testing.T) {
	fed := Generate(DefaultIID().Scaled(0.3))
	seen := map[int]bool{}
	for _, s := range fed.Shards {
		for _, ex := range s.Train {
			seen[ex.Y] = true
		}
	}
	if len(seen) < 5 {
		t.Fatalf("IID data uses only %d of 10 classes", len(seen))
	}
}

func TestNames(t *testing.T) {
	if got := Default(0.5, 0.5).Name(); got != "Synthetic(0.5,0.5)" {
		t.Fatalf("Name = %q", got)
	}
	if got := DefaultIID().Name(); got != "Synthetic-IID" {
		t.Fatalf("IID Name = %q", got)
	}
}

func TestScaledFloors(t *testing.T) {
	c := Default(1, 1).Scaled(0.0001)
	if c.MinSamples < 10 || c.MaxSamples < c.MinSamples {
		t.Fatalf("Scaled produced invalid bounds: %d..%d", c.MinSamples, c.MaxSamples)
	}
}

// TestHeterogeneityOrdering checks the generator's core promise: the
// label-assignment disagreement between devices grows with (α, β). We
// measure it as the mean pairwise distance between per-device class
// histograms.
func TestHeterogeneityOrdering(t *testing.T) {
	spread := func(alpha, beta float64, iid bool) float64 {
		cfg := Default(alpha, beta).Scaled(0.3)
		cfg.IID = iid
		fed := Generate(cfg)
		hists := make([][]float64, len(fed.Shards))
		for k, s := range fed.Shards {
			h := make([]float64, fed.NumClasses)
			for _, ex := range s.Train {
				h[ex.Y]++
			}
			for c := range h {
				h[c] /= float64(len(s.Train))
			}
			hists[k] = h
		}
		total, pairs := 0.0, 0
		for i := range hists {
			for j := i + 1; j < len(hists); j++ {
				d := 0.0
				for c := range hists[i] {
					d += math.Abs(hists[i][c] - hists[j][c])
				}
				total += d
				pairs++
			}
		}
		return total / float64(pairs)
	}
	iid := spread(0, 0, true)
	high := spread(1, 1, false)
	if high <= iid {
		t.Fatalf("Synthetic(1,1) spread %g not above IID spread %g", high, iid)
	}
}

func TestPanicsOnInvalidConfig(t *testing.T) {
	cfg := Default(1, 1)
	cfg.Devices = 0
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	Generate(cfg)
}

func TestPowerLawSampleSkew(t *testing.T) {
	fed := Generate(Default(1, 1))
	st := fed.ComputeStats()
	if st.StdevPerDev < st.MeanPerDev*0.3 {
		t.Fatalf("sample allocation too uniform: mean=%g std=%g", st.MeanPerDev, st.StdevPerDev)
	}
}

func TestLabelsAreArgmaxOfLocalModel(t *testing.T) {
	// Regenerating with the same seed must reproduce labels consistent
	// with features — spot-check via dataset-level accuracy of a fresh
	// generation being identical rather than re-deriving W (internal).
	fed := Generate(Default(0, 0).Scaled(0.2))
	var first data.Example
	found := false
	for _, s := range fed.Shards {
		if len(s.Train) > 0 {
			first = s.Train[0]
			found = true
			break
		}
	}
	if !found || len(first.X) != 60 {
		t.Fatal("no examples generated")
	}
}
