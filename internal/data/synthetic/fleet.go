package synthetic

import (
	"math"

	"fedprox/internal/data"
	"fedprox/internal/frand"
	"fedprox/internal/tensor"
)

// Fleet is the lazy data.Fleet view of a synthetic population: it holds
// only the O(N) sample-size allocation plus the generator's stream
// seeds, and synthesizes a device's shard on demand — bit-identical to
// the shard Generate would have produced at the same index (asserted in
// tests). Peak memory for a run over the fleet is O(active cohort), not
// O(population), which is what lets virtual-time sweeps reach 10^5–10^6
// devices.
//
// Shard is a pure function of (config, device index), so concurrent
// calls with distinct indices are safe. Release is a no-op: shards are
// independent allocations handed to the garbage collector.
type Fleet struct {
	cfg   Config
	sizes []int
	// sigma[j] = (j+1)^-1.2, the diagonal input covariance; sigmaStd
	// caches its square root (the per-example draw uses the std).
	sigma    []float64
	sigmaStd []float64
	// Shared model for the IID dataset (nil rows otherwise).
	sharedW tensor.Mat
	sharedB []float64
	// Stream states captured after construction-time draws, exactly
	// where Generate's device loop begins: SplitIndex from these states
	// reproduces Generate's per-device streams.
	modelState, dataState, splitState uint64
}

// NewFleet builds the lazy fleet for c. Construction performs only the
// sequential draws Generate does before its device loop — the power-law
// size allocation and (for IID) the shared model — so it is O(N) ints,
// not O(total samples).
func NewFleet(c Config) *Fleet {
	if c.Devices <= 0 || c.Dim <= 0 || c.Classes <= 1 {
		panic("synthetic: invalid config")
	}
	root := frand.New(c.Seed)
	sizeRng := root.Split("sizes")
	modelRng := root.Split("models")
	dataRng := root.Split("data")
	splitRng := root.Split("split")

	f := &Fleet{
		cfg:   c,
		sizes: data.PowerLawSizes(sizeRng, c.Devices, c.MinSamples, c.MaxSamples, c.PowerAlpha),
	}
	f.sigma = make([]float64, c.Dim)
	f.sigmaStd = make([]float64, c.Dim)
	for j := range f.sigma {
		f.sigma[j] = math.Pow(float64(j+1), -1.2)
		f.sigmaStd[j] = math.Sqrt(f.sigma[j])
	}
	if c.IID {
		// These draws advance modelRng before the device loop, exactly
		// as in Generate; the per-device streams split from the
		// advanced state.
		f.sharedW = tensor.NewMat(c.Classes, c.Dim)
		modelRng.NormVec(f.sharedW.Data, 0, 1)
		f.sharedB = modelRng.NormVec(make([]float64, c.Classes), 0, 1)
	}
	f.modelState = modelRng.State()
	f.dataState = dataRng.State()
	f.splitState = splitRng.State()
	return f
}

// Config returns the generator configuration the fleet was built from.
func (f *Fleet) Config() Config { return f.cfg }

// NumDevices returns the population size.
func (f *Fleet) NumDevices() int { return f.cfg.Devices }

// TrainSize returns device k's training-set size without synthesizing
// its examples: SplitTrainTest's train count is a deterministic
// function of the sample count and TrainFrac.
func (f *Fleet) TrainSize(k int) int {
	n := f.sizes[k]
	nTrain := int(math.Round(f.cfg.TrainFrac * float64(n)))
	if nTrain == n && n > 1 {
		nTrain--
	}
	if nTrain == 0 && n > 1 {
		nTrain = 1
	}
	return nTrain
}

// Shard synthesizes device k's shard, bit-identical to
// Generate(f.Config()).Shards[k].
func (f *Fleet) Shard(k int) *data.Shard {
	c := f.cfg
	devModel := frand.New(f.modelState).SplitIndex(k)
	devData := frand.New(f.dataState).SplitIndex(k)

	W := f.sharedW
	b := f.sharedB
	var mean []float64
	if c.IID {
		mean = make([]float64, c.Dim) // v = 0 for every device
	} else {
		// u_k ~ N(0, α); W_k, b_k ~ N(u_k, 1).
		uk := devModel.NormMeanStd(0, math.Sqrt(c.Alpha))
		W = tensor.NewMat(c.Classes, c.Dim)
		devModel.NormVec(W.Data, uk, 1)
		b = devModel.NormVec(make([]float64, c.Classes), uk, 1)
		// B_k ~ N(0, β); (v_k)_j ~ N(B_k, 1).
		Bk := devModel.NormMeanStd(0, math.Sqrt(c.Beta))
		mean = devModel.NormVec(make([]float64, c.Dim), Bk, 1)
	}

	logits := make([]float64, c.Classes)
	examples := make([]data.Example, f.sizes[k])
	for i := range examples {
		x := make([]float64, c.Dim)
		for j := range x {
			x[j] = devData.NormMeanStd(mean[j], f.sigmaStd[j])
		}
		tensor.MatVecAdd(logits, W, x, b)
		examples[i] = data.Example{X: x, Y: tensor.ArgMax(logits)}
	}
	train, test := data.SplitTrainTest(examples, c.TrainFrac, frand.New(f.splitState).SplitIndex(k))
	return &data.Shard{ID: k, Train: train, Test: test}
}

// Release is a no-op; shards are independent allocations.
func (f *Fleet) Release(int) {}
