// Package synthetic implements the paper's synthetic federated data
// generator (Section 5.1, Appendix C.1).
//
// For each device k the generator draws a local softmax model and a local
// input distribution:
//
//	y = argmax(softmax(W_k·x + b_k)),  x ∈ R^60, W_k ∈ R^{10×60}, b_k ∈ R^10
//	W_k ~ N(u_k, 1),  b_k ~ N(u_k, 1),  u_k ~ N(0, α)
//	x_k ~ N(v_k, Σ),  Σ diagonal with Σ_jj = j^{-1.2}
//	(v_k)_j ~ N(B_k, 1),  B_k ~ N(0, β)
//
// α controls how much local models differ from each other; β controls how
// much local data distributions differ. Synthetic(0,0), Synthetic(0.5,0.5)
// and Synthetic(1,1) form the paper's increasing-heterogeneity ladder.
// For the IID dataset the same W, b ~ N(0,1) are shared by every device and
// every device draws x ~ N(0, Σ).
//
// There are 30 devices and the number of samples per device follows a
// power law.
package synthetic

import (
	"fmt"
	"math"

	"fedprox/internal/data"
	"fedprox/internal/frand"
	"fedprox/internal/tensor"
)

// Config parameterizes the generator. The zero value is not useful; start
// from Default.
type Config struct {
	// Alpha controls model heterogeneity (α in the paper).
	Alpha float64
	// Beta controls data heterogeneity (β in the paper).
	Beta float64
	// IID, when true, ignores Alpha/Beta and generates the Synthetic-IID
	// dataset: one shared model, one shared input distribution.
	IID bool
	// Devices is the number of devices (paper: 30).
	Devices int
	// Dim is the input dimension (paper: 60).
	Dim int
	// Classes is the number of labels (paper: 10).
	Classes int
	// MinSamples and MaxSamples bound the power-law sample allocation.
	MinSamples, MaxSamples int
	// PowerAlpha is the power-law exponent for sample allocation.
	PowerAlpha float64
	// TrainFrac is the per-device train split (paper: 0.8).
	TrainFrac float64
	// Seed drives all randomness.
	Seed uint64
}

// Default returns the paper-scale configuration for Synthetic(α, β).
func Default(alpha, beta float64) Config {
	return Config{
		Alpha:      alpha,
		Beta:       beta,
		Devices:    30,
		Dim:        60,
		Classes:    10,
		MinSamples: 50,
		MaxSamples: 4000,
		PowerAlpha: 1.55,
		TrainFrac:  0.8,
		Seed:       42,
	}
}

// DefaultIID returns the paper-scale configuration for Synthetic-IID.
func DefaultIID() Config {
	c := Default(0, 0)
	c.IID = true
	return c
}

// Scaled returns a copy of c with per-device sample bounds scaled by f
// (floored at 10 samples). Experiments use this to trade fidelity for
// runtime without changing the heterogeneity structure.
func (c Config) Scaled(f float64) Config {
	c.MinSamples = scaleFloor(c.MinSamples, f, 10)
	c.MaxSamples = scaleFloor(c.MaxSamples, f, c.MinSamples)
	return c
}

func scaleFloor(n int, f float64, floor int) int {
	v := int(math.Round(float64(n) * f))
	if v < floor {
		v = floor
	}
	return v
}

// Name returns the dataset's display name, matching the paper's figures.
func (c Config) Name() string {
	if c.IID {
		return "Synthetic-IID"
	}
	return fmt.Sprintf("Synthetic(%g,%g)", c.Alpha, c.Beta)
}

// Generate builds the federated dataset described by c.
func Generate(c Config) *data.Federated {
	if c.Devices <= 0 || c.Dim <= 0 || c.Classes <= 1 {
		panic("synthetic: invalid config")
	}
	root := frand.New(c.Seed)
	sizeRng := root.Split("sizes")
	modelRng := root.Split("models")
	dataRng := root.Split("data")
	splitRng := root.Split("split")

	sizes := data.PowerLawSizes(sizeRng, c.Devices, c.MinSamples, c.MaxSamples, c.PowerAlpha)

	// Diagonal input covariance Σ_jj = j^{-1.2} (1-indexed as in the paper).
	sigma := make([]float64, c.Dim)
	for j := range sigma {
		sigma[j] = math.Pow(float64(j+1), -1.2)
	}

	// Shared model for the IID dataset.
	var sharedW tensor.Mat
	var sharedB []float64
	if c.IID {
		sharedW = tensor.NewMat(c.Classes, c.Dim)
		modelRng.NormVec(sharedW.Data, 0, 1)
		sharedB = modelRng.NormVec(make([]float64, c.Classes), 0, 1)
	}

	fed := &data.Federated{
		Name:       c.Name(),
		NumClasses: c.Classes,
		FeatureDim: c.Dim,
	}

	logits := make([]float64, c.Classes)
	for k := 0; k < c.Devices; k++ {
		devModel := modelRng.SplitIndex(k)
		devData := dataRng.SplitIndex(k)

		W := sharedW
		b := sharedB
		var mean []float64
		if c.IID {
			mean = make([]float64, c.Dim) // v = 0 for every device
		} else {
			// u_k ~ N(0, α); W_k, b_k ~ N(u_k, 1).
			uk := devModel.NormMeanStd(0, math.Sqrt(c.Alpha))
			W = tensor.NewMat(c.Classes, c.Dim)
			devModel.NormVec(W.Data, uk, 1)
			b = devModel.NormVec(make([]float64, c.Classes), uk, 1)
			// B_k ~ N(0, β); (v_k)_j ~ N(B_k, 1).
			Bk := devModel.NormMeanStd(0, math.Sqrt(c.Beta))
			mean = devModel.NormVec(make([]float64, c.Dim), Bk, 1)
		}

		examples := make([]data.Example, sizes[k])
		for i := range examples {
			x := make([]float64, c.Dim)
			for j := range x {
				x[j] = devData.NormMeanStd(mean[j], math.Sqrt(sigma[j]))
			}
			tensor.MatVecAdd(logits, W, x, b)
			examples[i] = data.Example{X: x, Y: tensor.ArgMax(logits)}
		}
		train, test := data.SplitTrainTest(examples, c.TrainFrac, splitRng.SplitIndex(k))
		fed.Shards = append(fed.Shards, &data.Shard{ID: k, Train: train, Test: test})
	}
	if err := fed.Validate(); err != nil {
		panic(err)
	}
	return fed
}
