// Package imagesim generates class-conditional Gaussian "image" datasets
// with label-skew federated partitions. It is the shared substrate behind
// the MNIST and FEMNIST surrogates (see DESIGN.md §4 for the substitution
// argument).
//
// Each class c gets a prototype image: a sum of a few smooth 2-D Gaussian
// blobs on a side×side grid, giving classes distinct but overlapping
// spatial structure (like digit strokes). An example of class c is the
// prototype plus pixel noise, clamped to [0, 1]. Devices receive samples
// from only a small set of classes (2 for MNIST, 5 for FEMNIST), and
// per-device sample counts follow a power law — the two mechanisms the
// paper uses to impose statistical heterogeneity on real image data.
package imagesim

import (
	"math"

	"fedprox/internal/data"
	"fedprox/internal/frand"
)

// Config parameterizes the generator.
type Config struct {
	// Name labels the resulting dataset ("MNIST", "FEMNIST").
	Name string
	// Devices is the number of devices in the network.
	Devices int
	// Classes is the number of labels.
	Classes int
	// ClassesPerDevice is the label-skew degree: each device only ever sees
	// this many distinct classes.
	ClassesPerDevice int
	// Side is the image side length; FeatureDim = Side².
	Side int
	// BlobsPerClass controls prototype complexity.
	BlobsPerClass int
	// Noise is the per-pixel Gaussian noise stddev.
	Noise float64
	// DeviceSkew scales a per-device smooth "style" field added to every
	// prototype the device renders — the analogue of per-writer
	// handwriting style. It makes x|y device-dependent (feature-level
	// statistical heterogeneity) and keeps the task from being linearly
	// separable across devices.
	DeviceSkew float64
	// StyleBlobs is the number of signed bumps in each device's style
	// field; 0 selects 3.
	StyleBlobs int
	// MinSamples and MaxSamples bound the power-law allocation.
	MinSamples, MaxSamples int
	// PowerAlpha is the power-law exponent.
	PowerAlpha float64
	// TrainFrac is the per-device train split.
	TrainFrac float64
	// Seed drives all randomness.
	Seed uint64
}

// Scaled returns a copy of c with sample bounds scaled by f (floored at 5).
func (c Config) Scaled(f float64) Config {
	c.MinSamples = scaleFloor(c.MinSamples, f, 5)
	c.MaxSamples = scaleFloor(c.MaxSamples, f, c.MinSamples)
	return c
}

func scaleFloor(n int, f float64, floor int) int {
	v := int(math.Round(float64(n) * f))
	if v < floor {
		v = floor
	}
	return v
}

// Generate builds the federated dataset described by c.
func Generate(c Config) *data.Federated {
	if c.Devices <= 0 || c.Classes <= 1 || c.ClassesPerDevice <= 0 || c.Side <= 1 {
		panic("imagesim: invalid config")
	}
	root := frand.New(c.Seed)
	protoRng := root.Split("prototypes")
	sizeRng := root.Split("sizes")
	assignRng := root.Split("assign")
	sampleRng := root.Split("samples")
	splitRng := root.Split("split")

	dim := c.Side * c.Side
	protos := Prototypes(protoRng, c.Classes, c.Side, c.BlobsPerClass)
	sizes := data.PowerLawSizes(sizeRng, c.Devices, c.MinSamples, c.MaxSamples, c.PowerAlpha)
	classSets := data.LabelSkewAssign(assignRng, c.Devices, c.Classes, c.ClassesPerDevice)

	fed := &data.Federated{
		Name:       c.Name,
		NumClasses: c.Classes,
		FeatureDim: dim,
	}
	styleRng := root.Split("styles")
	for k := 0; k < c.Devices; k++ {
		devRng := sampleRng.SplitIndex(k)
		classes := classSets[k]
		var style []float64
		if c.DeviceSkew > 0 {
			blobs := c.StyleBlobs
			if blobs <= 0 {
				blobs = 3
			}
			style = styleField(styleRng.SplitIndex(k), c.Side, blobs)
		}
		examples := make([]data.Example, sizes[k])
		for i := range examples {
			y := classes[devRng.Intn(len(classes))]
			x := make([]float64, dim)
			proto := protos[y]
			for j := range x {
				v := proto[j] + devRng.NormMeanStd(0, c.Noise)
				if style != nil {
					v += c.DeviceSkew * style[j]
				}
				if v < 0 {
					v = 0
				} else if v > 1 {
					v = 1
				}
				x[j] = v
			}
			examples[i] = data.Example{X: x, Y: y}
		}
		train, test := data.SplitTrainTest(examples, c.TrainFrac, splitRng.SplitIndex(k))
		fed.Shards = append(fed.Shards, &data.Shard{ID: k, Train: train, Test: test})
	}
	if err := fed.Validate(); err != nil {
		panic(err)
	}
	return fed
}

// styleField draws a smooth signed field in roughly [−1, 1]: a handful of
// positive and negative Gaussian bumps, the per-device rendering style.
func styleField(rng *frand.Source, side, blobs int) []float64 {
	img := make([]float64, side*side)
	for b := 0; b < blobs; b++ {
		cx := rng.Float64() * float64(side-1)
		cy := rng.Float64() * float64(side-1)
		w := (0.1 + 0.2*rng.Float64()) * float64(side)
		amp := 2*rng.Float64() - 1
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				dx := float64(x) - cx
				dy := float64(y) - cy
				img[y*side+x] += amp * math.Exp(-(dx*dx+dy*dy)/(2*w*w))
			}
		}
	}
	return img
}

// Prototypes builds one prototype image per class: blobs 2-D Gaussian bumps
// with random centers, widths, and intensities on a side×side grid,
// normalized to peak at 1.
func Prototypes(rng *frand.Source, classes, side, blobs int) [][]float64 {
	out := make([][]float64, classes)
	for c := 0; c < classes; c++ {
		crng := rng.SplitIndex(c)
		img := make([]float64, side*side)
		for b := 0; b < blobs; b++ {
			cx := crng.Float64() * float64(side-1)
			cy := crng.Float64() * float64(side-1)
			// Width between 8% and 25% of the image side.
			w := (0.08 + 0.17*crng.Float64()) * float64(side)
			amp := 0.5 + 0.5*crng.Float64()
			for y := 0; y < side; y++ {
				for x := 0; x < side; x++ {
					dx := float64(x) - cx
					dy := float64(y) - cy
					img[y*side+x] += amp * math.Exp(-(dx*dx+dy*dy)/(2*w*w))
				}
			}
		}
		// Normalize to a peak of 1 so noise scale is comparable per class.
		max := 0.0
		for _, v := range img {
			if v > max {
				max = v
			}
		}
		if max > 0 {
			for j := range img {
				img[j] /= max
			}
		}
		out[c] = img
	}
	return out
}
