package imagesim

import (
	"testing"

	"fedprox/internal/frand"
)

func testConfig() Config {
	return Config{
		Name:             "test",
		Devices:          30,
		Classes:          5,
		ClassesPerDevice: 2,
		Side:             8,
		BlobsPerClass:    3,
		Noise:            0.2,
		MinSamples:       10,
		MaxSamples:       40,
		PowerAlpha:       2.0,
		TrainFrac:        0.8,
		Seed:             5,
	}
}

func TestGenerateShape(t *testing.T) {
	fed := Generate(testConfig())
	if fed.NumDevices() != 30 || fed.FeatureDim != 64 || fed.NumClasses != 5 {
		t.Fatalf("shape: %d devices, %d dim, %d classes", fed.NumDevices(), fed.FeatureDim, fed.NumClasses)
	}
	if err := fed.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPixelsInUnitRange(t *testing.T) {
	fed := Generate(testConfig())
	for _, s := range fed.Shards {
		for _, ex := range s.Train {
			for _, v := range ex.X {
				if v < 0 || v > 1 {
					t.Fatalf("pixel %g outside [0,1]", v)
				}
			}
		}
	}
}

func TestLabelSkewHolds(t *testing.T) {
	fed := Generate(testConfig())
	for _, s := range fed.Shards {
		classes := map[int]bool{}
		for _, ex := range s.Train {
			classes[ex.Y] = true
		}
		for _, ex := range s.Test {
			classes[ex.Y] = true
		}
		if len(classes) > 2 {
			t.Fatalf("device %d saw %d classes, want <= 2", s.ID, len(classes))
		}
	}
}

func TestDeterministic(t *testing.T) {
	a, b := Generate(testConfig()), Generate(testConfig())
	if a.Shards[3].Train[0].X[10] != b.Shards[3].Train[0].X[10] {
		t.Fatal("generation not deterministic")
	}
}

func TestPrototypesDistinct(t *testing.T) {
	protos := Prototypes(frand.New(3), 4, 8, 3)
	if len(protos) != 4 {
		t.Fatalf("got %d prototypes", len(protos))
	}
	for c, p := range protos {
		max := 0.0
		for _, v := range p {
			if v > max {
				max = v
			}
		}
		if max < 0.99 || max > 1.01 {
			t.Fatalf("class %d prototype peak = %g, want 1", c, max)
		}
	}
	// Distinct classes must differ somewhere meaningful.
	diff := 0.0
	for j := range protos[0] {
		d := protos[0][j] - protos[1][j]
		diff += d * d
	}
	if diff < 1e-3 {
		t.Fatal("prototypes of different classes are nearly identical")
	}
}

func TestStyleFieldBounded(t *testing.T) {
	f := styleField(frand.New(9), 12, 3)
	if len(f) != 144 {
		t.Fatalf("style field length %d", len(f))
	}
	for i, v := range f {
		if v < -3.5 || v > 3.5 {
			t.Fatalf("style field[%d] = %g, out of plausible bump range", i, v)
		}
	}
	// Must be signed: a pure-positive field would only brighten.
	hasNeg, hasPos := false, false
	for _, v := range f {
		if v < -0.05 {
			hasNeg = true
		}
		if v > 0.05 {
			hasPos = true
		}
	}
	if !hasNeg || !hasPos {
		t.Fatal("style field is not signed")
	}
}

// TestDeviceSkewSeparatesDevices: with skew on, two devices sharing a
// class render it differently; with skew off they agree up to noise.
func TestDeviceSkewSeparatesDevices(t *testing.T) {
	meanImage := func(skew float64, device int) []float64 {
		c := testConfig()
		c.DeviceSkew = skew
		c.ClassesPerDevice = c.Classes // all devices see all classes
		c.MinSamples, c.MaxSamples = 60, 60
		fed := Generate(c)
		sum := make([]float64, fed.FeatureDim)
		n := 0
		for _, ex := range fed.Shards[device].Train {
			if ex.Y != 0 {
				continue
			}
			for j, v := range ex.X {
				sum[j] += v
			}
			n++
		}
		for j := range sum {
			sum[j] /= float64(n)
		}
		return sum
	}
	dist := func(skew float64) float64 {
		a, b := meanImage(skew, 0), meanImage(skew, 1)
		d := 0.0
		for j := range a {
			d += (a[j] - b[j]) * (a[j] - b[j])
		}
		return d
	}
	if dist(0.8) <= dist(0)*1.5 {
		t.Fatalf("device skew had no separating effect: skew=%g noskew=%g", dist(0.8), dist(0))
	}
}

func TestScaledFloors(t *testing.T) {
	c := testConfig().Scaled(0.001)
	if c.MinSamples < 5 || c.MaxSamples < c.MinSamples {
		t.Fatalf("Scaled bounds invalid: %d..%d", c.MinSamples, c.MaxSamples)
	}
}

func TestPanicsOnInvalidConfig(t *testing.T) {
	c := testConfig()
	c.Classes = 1
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	Generate(c)
}
