// Package mnistsim provides the offline surrogate for the paper's federated
// MNIST workload: 10 classes, 1,000 devices, 2 digits per device, samples
// per device following a power law, multinomial logistic regression model
// (Section 5.1 and Appendix C.1).
//
// Real MNIST images are replaced by class-conditional Gaussian prototype
// images (see internal/data/imagesim and DESIGN.md §4); the optimization
// structure that the paper's experiments exercise — convex local
// objectives with heavy label skew and power-law device sizes — is
// preserved exactly.
package mnistsim

import (
	"fedprox/internal/data"
	"fedprox/internal/data/imagesim"
)

// Default returns the paper-shape configuration: 1,000 devices, 28×28
// inputs, 2 of 10 classes per device, ~69 samples per device on average.
func Default() imagesim.Config {
	return imagesim.Config{
		Name:             "MNIST",
		Devices:          1000,
		Classes:          10,
		ClassesPerDevice: 2,
		Side:             28,
		BlobsPerClass:    4,
		Noise:            0.45,
		DeviceSkew:       0.45,
		StyleBlobs:       3,
		MinSamples:       18,
		MaxSamples:       1100,
		PowerAlpha:       2.12,
		TrainFrac:        0.8,
		Seed:             1001,
	}
}

// Generate builds the MNIST surrogate at paper scale.
func Generate() *data.Federated { return imagesim.Generate(Default()) }

// GenerateScaled builds the MNIST surrogate with device count and sample
// bounds scaled by f, for fast experiment runs.
func GenerateScaled(f float64) *data.Federated {
	c := Default().Scaled(f)
	c.Devices = scaleDevices(c.Devices, f)
	return imagesim.Generate(c)
}

func scaleDevices(n int, f float64) int {
	v := int(float64(n) * f)
	if v < 20 {
		v = 20
	}
	return v
}
