package mnistsim

import "testing"

func TestScaledShape(t *testing.T) {
	fed := GenerateScaled(0.03)
	if fed.Name != "MNIST" {
		t.Fatalf("name = %q", fed.Name)
	}
	if fed.FeatureDim != 784 || fed.NumClasses != 10 {
		t.Fatalf("shape: dim=%d classes=%d", fed.FeatureDim, fed.NumClasses)
	}
	if fed.NumDevices() < 20 {
		t.Fatalf("device floor violated: %d", fed.NumDevices())
	}
	if err := fed.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoDigitsPerDevice(t *testing.T) {
	fed := GenerateScaled(0.03)
	for _, s := range fed.Shards {
		classes := map[int]bool{}
		for _, ex := range s.Train {
			classes[ex.Y] = true
		}
		for _, ex := range s.Test {
			classes[ex.Y] = true
		}
		if len(classes) > 2 {
			t.Fatalf("device %d has %d digits, want <= 2", s.ID, len(classes))
		}
	}
}

func TestDefaultMatchesPaperScale(t *testing.T) {
	c := Default()
	if c.Devices != 1000 || c.Classes != 10 || c.ClassesPerDevice != 2 || c.Side != 28 {
		t.Fatalf("paper-scale config drifted: %+v", c)
	}
}
