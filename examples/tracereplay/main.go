// Trace replay: record one virtual-time run, then answer "what if the
// round deadline had been tighter?" three times without re-running a
// single local solve.
//
// The run executes FedProx over a fleet whose last 10% of devices
// compute 10x slower, with a JSONL event trace attached (the same
// -trace artifact fedbench and fedserver record). The trace captures
// every dispatch and every reply's realized latency — which means the
// scheduling half of the simulation is fully determined by it.
// core.Replay feeds those recorded arrivals back through a fresh
// sans-I/O coordinator under an alternative VTime.DeadlineSeconds, and
// the coordinator re-derives the fold schedule, the dispositions, and
// the virtual clock under the new policy. Training math never runs:
// what took the recording a few hundred local solves costs the replays
// none.
//
//	go run ./examples/tracereplay
package main

import (
	"bytes"
	"fmt"
	"log"

	"fedprox/internal/core"
	"fedprox/internal/data/synthetic"
	"fedprox/internal/model/linear"
	"fedprox/internal/obs"
	"fedprox/internal/obs/tracefile"
	"fedprox/internal/vtime"
)

func main() {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.25))
	mdl := linear.ForDataset(fed)
	n := fed.NumDevices()

	cfg := core.FedProx(20, 10, 5, 0.01, 1)
	cfg.StragglerFraction = 0.5
	cfg.EvalEvery = 5
	cfg.VTime = core.VTimeConfig{Model: vtime.MustModel(
		vtime.UniformCompute{SecondsPerEpoch: 0.05, Speed: vtime.SlowTail(n, 0.1, 10)},
		vtime.Net{UplinkBps: 1e6, DownlinkBps: 4e6, Latency: 0.02, JitterStd: 0.1},
		42,
	)}

	// Record: one real run with the trace sink attached.
	var buf bytes.Buffer
	j := obs.NewJSONL(&buf)
	cfg.Trace = j
	h, err := core.Run(mdl, fed, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := j.Err(); err != nil {
		log.Fatal(err)
	}
	recorded, err := tracefile.ReadAll(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fin := h.Final()
	fmt.Printf("recorded: %s\n", h.Label)
	fmt.Printf("  %d arrivals traced, final loss %.4f\n\n", len(h.Arrivals), fin.TrainLoss)

	// Replay: the recorded arrivals under three deadlines. The 0 row is
	// the recorded policy (no deadline) and must re-derive the recorded
	// schedule exactly.
	fmt.Printf("%-12s %10s %8s %8s %10s\n", "deadline", "virtual-s", "folded", "dropped", "vs recorded")
	cfg.Trace = nil
	for _, deadline := range []float64{0, 2, 1} {
		alt := cfg
		alt.VTime.DeadlineSeconds = deadline
		r, err := core.Replay(mdl, fed.Fleet(), alt, recorded)
		if err != nil {
			log.Fatal(err)
		}
		folded, dropped := 0, 0
		for _, a := range r.Arrivals {
			if a.Drop == core.ArrivalFolded {
				folded++
			} else {
				dropped++
			}
		}
		name := "recorded"
		if deadline > 0 {
			name = fmt.Sprintf("%gs", deadline)
		}
		rf := r.Final()
		fmt.Printf("%-12s %10.1f %8d %8d %9.2fx\n",
			name, rf.VirtualSeconds, folded, dropped, fin.VirtualSeconds/rf.VirtualSeconds)
	}
	fmt.Println("\nzero local solves ran during the three replays: the what-ifs are")
	fmt.Println("pure arrival bookkeeping over the recorded latencies.")
}
