// Compression: sweep the internal/comm model-update codecs on the
// paper's Synthetic(1,1) workload and print the accuracy-vs-bytes
// frontier.
//
// FedProx's setting is a network where communication dominates cost.
// This example makes that trade explicit: every run shares the same
// seed (same devices, stragglers, batch orders, and initial model), so
// the only difference between rows is the codec on the wire. Uplink is
// the scarce direction on real devices, which is why the top-k row
// compresses only the uplink and broadcasts densely.
//
//	go run ./examples/compression
package main

import (
	"fmt"
	"log"

	"fedprox/internal/comm"
	"fedprox/internal/core"
	"fedprox/internal/data/synthetic"
	"fedprox/internal/model/linear"
)

func main() {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.25))
	mdl := linear.ForDataset(fed)
	fmt.Printf("dataset: %s — %d devices, %d samples, %d model parameters\n\n",
		fed.Name, fed.NumDevices(), fed.TotalSamples(), mdl.NumParams())

	base := core.FedProx(60, 10, 20, 0.01, 1)
	base.StragglerFraction = 0.5
	base.EvalEvery = 60

	sweep := []struct {
		codec comm.Spec
		down  comm.Spec
	}{
		{codec: comm.Spec{Name: "raw"}},
		{codec: comm.Spec{Name: "delta"}},
		{codec: comm.Spec{Name: "qsgd", Bits: 8}},
		{codec: comm.Spec{Name: "qsgd", Bits: 4}},
		{codec: comm.Spec{Name: "delta+qsgd", Bits: 8}},
		{codec: comm.Spec{Name: "topk", TopK: 0.1}, down: comm.Spec{Name: "raw"}},
	}

	// The same sweep is registered as the ext-codecs experiment
	// (go run ./cmd/fedbench -exp ext-codecs); this example walks the
	// library API directly.
	fmt.Printf("%-34s %10s %10s %8s %12s %10s\n",
		"codec", "up-KB", "down-KB", "up-ratio", "final-loss", "best-acc")
	var rawUp int64
	for _, sw := range sweep {
		cfg := base
		cfg.Codec = sw.codec
		cfg.DownlinkCodec = sw.down
		hist, err := core.Run(mdl, fed, cfg)
		if err != nil {
			log.Fatal(err)
		}
		c := hist.Final().Cost
		if sw.codec.Name == "raw" {
			rawUp = c.UplinkBytes
		}
		ratio := 1.0
		if rawUp > 0 && c.UplinkBytes > 0 {
			ratio = float64(rawUp) / float64(c.UplinkBytes)
		}
		label := sw.codec.String()
		if sw.down.Enabled() {
			label += " (downlink " + sw.down.String() + ")"
		}
		fmt.Printf("%-34s %10.1f %10.1f %7.1fx %12.4f %10.4f\n",
			label,
			float64(c.UplinkBytes)/1024, float64(c.DownlinkBytes)/1024,
			ratio, hist.Final().TrainLoss, hist.BestAccuracy())
	}

	fmt.Println("\nEvery row saw the identical federated environment; the byte columns")
	fmt.Println("are the codecs' wire accounting. qsgd-8 and uplink top-k-10% should")
	fmt.Println("match the raw loss within a few percent at 4-13x fewer uplink bytes.")
}
