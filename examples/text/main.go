// Text: the paper's non-convex workload — next-character prediction on
// the Shakespeare surrogate with a 2-layer LSTM, trained federatedly with
// FedProx under stragglers.
//
// One device per speaking role; each role's character stream comes from
// its own Markov mixture, so local distributions differ (statistical
// heterogeneity) while sharing global structure a single model can learn.
//
//	go run ./examples/text
package main

import (
	"fmt"
	"log"

	"fedprox/internal/core"
	"fedprox/internal/data/shakespearesim"
	"fedprox/internal/model/lstm"
)

func main() {
	cfg := shakespearesim.Default().Scaled(0.004, 12) // tiny corpus, seq len 12
	cfg.Devices = 30
	fed := shakespearesim.Generate(cfg)
	mdl := lstm.ForDataset(fed, 8, 16, 2) // embed 8, hidden 16, 2 layers

	fmt.Printf("dataset: %s — %d roles, %d sequences, vocab %d, seq len %d\n",
		fed.Name, fed.NumDevices(), fed.TotalSamples(), fed.VocabSize, fed.SeqLen)
	fmt.Printf("model: 2-layer LSTM, %d parameters\n\n", mdl.NumParams())

	run := core.FedProx(8, 10, 2, 0.8, 0.001) // the paper's Shakespeare lr and best mu
	run.StragglerFraction = 0.5
	run.EvalEvery = 2
	hist, err := core.Run(mdl, fed, run)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(hist)

	baseline := 1.0 / float64(fed.VocabSize)
	fmt.Printf("\nrandom-guess accuracy is %.4f; the LSTM should beat it early\n", baseline)
}
