// Adaptive mu: demonstrate the Section 5.3.2 heuristic that removes the
// need to hand-tune the proximal coefficient.
//
// mu starts at an adversarial value (1 on IID data, where any mu > 0 only
// slows things down; 0 on highly heterogeneous data, where mu = 0 is
// unstable) and the controller steers it: +0.1 whenever the global loss
// rises, −0.1 after five consecutive falls.
//
//	go run ./examples/adaptive_mu
package main

import (
	"fmt"
	"log"

	"fedprox/internal/core"
	"fedprox/internal/data/synthetic"
	"fedprox/internal/model/linear"
)

func main() {
	cases := []struct {
		cfg synthetic.Config
		mu0 float64
	}{
		{synthetic.DefaultIID().Scaled(0.25), 1},  // adversarial: prox not needed
		{synthetic.Default(1, 1).Scaled(0.25), 0}, // adversarial: prox needed
	}
	for _, tc := range cases {
		fed := synthetic.Generate(tc.cfg)
		mdl := linear.ForDataset(fed)

		run := func(adaptive bool, mu float64) *core.History {
			cfg := core.FedProx(80, 10, 20, 0.01, mu)
			cfg.AdaptiveMu = adaptive
			cfg.EvalEvery = 20
			h, err := core.Run(mdl, fed, cfg)
			if err != nil {
				log.Fatal(err)
			}
			return h
		}

		fixed := run(false, tc.mu0)
		adaptive := run(true, tc.mu0)

		fmt.Printf("== %s, mu0 = %g ==\n", fed.Name, tc.mu0)
		fmt.Printf("%-26s final-loss=%.4f final-acc=%.4f\n",
			fixed.Label, fixed.Final().TrainLoss, fixed.Final().TestAcc)
		fmt.Printf("%-26s final-loss=%.4f final-acc=%.4f (mu ended at %.2g)\n\n",
			adaptive.Label, adaptive.Final().TrainLoss, adaptive.Final().TestAcc,
			adaptive.Final().Mu)
	}
	fmt.Println("the adaptive runs should recover from their adversarial mu0")
}
