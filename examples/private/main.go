// Private: compose FedProx with the two standard privacy mechanisms the
// paper's footnote 1 refers to.
//
//  1. Update-level DP: every device clips its model delta and adds
//     Gaussian noise before upload (internal/privacy), wired straight
//     into the core round loop.
//
//  2. Secure aggregation: devices upload pairwise-masked weighted models;
//     the server recovers only the weighted average, never an individual
//     update (internal/secagg).
//
//     go run ./examples/private
package main

import (
	"fmt"
	"log"
	"math"

	"fedprox/internal/core"
	"fedprox/internal/data/synthetic"
	"fedprox/internal/frand"
	"fedprox/internal/model/linear"
	"fedprox/internal/privacy"
	"fedprox/internal/secagg"
	"fedprox/internal/tensor"
)

func main() {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.25))
	mdl := linear.ForDataset(fed)

	// --- Part 1: DP-FedProx ---
	fmt.Println("== update-level differential privacy ==")
	base := core.FedProx(60, 10, 20, 0.01, 1)
	base.StragglerFraction = 0.5
	base.EvalEvery = 60
	for _, noise := range []float64{0, 0.0005, 0.005} {
		cfg := base
		if noise > 0 {
			cfg.Privacy = &privacy.Mechanism{ClipNorm: 0.5, NoiseStd: noise, Seed: 11}
		}
		h, err := core.Run(mdl, fed, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("noise=%-7g final-loss=%.4f final-acc=%.4f\n",
			noise, h.Final().TrainLoss, h.Final().TestAcc)
	}
	z := privacy.NoiseMultiplier(1.0, 1e-5)
	fmt.Printf("(single-release Gaussian mechanism at eps=1, delta=1e-5 needs sigma = %.2f x clip)\n\n", z)

	// --- Part 2: secure aggregation of one round ---
	fmt.Println("== secure aggregation of one FedProx round ==")
	ids := []int{0, 1, 2, 3, 4}
	cohort, err := secagg.NewCohort(ids, mdl.NumParams(), 424242)
	if err != nil {
		log.Fatal(err)
	}
	rng := frand.New(5)
	models := map[int][]float64{}
	sizes := map[int]int{}
	plain := make([]float64, mdl.NumParams())
	total := 0
	for _, id := range ids {
		models[id] = rng.NormVec(make([]float64, mdl.NumParams()), 0, 0.1)
		sizes[id] = len(fed.Shards[id].Train)
		total += sizes[id]
	}
	for _, id := range ids {
		tensor.Axpy(float64(sizes[id])/float64(total), models[id], plain)
	}
	secure, err := cohort.WeightedAverage(models, sizes)
	if err != nil {
		log.Fatal(err)
	}
	maxErr := 0.0
	for i := range plain {
		if d := math.Abs(secure[i] - plain[i]); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("devices: %v (weighted by local sample counts)\n", ids)
	fmt.Printf("max |secure − plain| over %d coordinates: %.2g (lattice resolution ~1e-6)\n",
		mdl.NumParams(), maxErr)
	fmt.Println("the server recovered the exact weighted average without seeing any single model")
}
