// Stragglers: sweep systems heterogeneity on the MNIST surrogate and
// compare the two straggler policies — dropping (FedAvg) versus
// aggregating partial solutions (FedProx) — at each level, then rerun
// the straggler scenario on the virtual clock to compare aggregation
// disciplines by virtual wall-clock, not just loss.
//
// The first table reproduces the mechanism behind Figure 1's columns: as
// the straggler fraction grows, dropping starves the server of updates
// while aggregation keeps every selected device contributing. The second
// table runs the same network over an internal/vtime latency model with
// a 10x-slow device tail: synchronous rounds pay the tail's latency at
// the round barrier, while async folds fast replies as they arrive — the
// virtual-time speedup is printed alongside the loss, and every number
// is deterministic (same seed, same output, bit for bit).
//
//	go run ./examples/stragglers
package main

import (
	"fmt"
	"log"

	"fedprox/internal/core"
	"fedprox/internal/data/mnistsim"
	"fedprox/internal/model/linear"
	"fedprox/internal/syshet"
	"fedprox/internal/vtime"
)

func main() {
	fed := mnistsim.GenerateScaled(0.05) // 50 devices, 2 digits each
	mdl := linear.ForDataset(fed)
	fmt.Printf("dataset: %s — %d devices, %d samples, 2 digits per device\n\n",
		fed.Name, fed.NumDevices(), fed.TotalSamples())

	base := func(policy core.StragglerPolicy, frac float64) core.Config {
		return core.Config{
			Rounds:            40,
			ClientsPerRound:   10,
			LocalEpochs:       20,
			LearningRate:      0.03,
			BatchSize:         10,
			Straggler:         policy,
			StragglerFraction: frac,
			EvalEvery:         40,
			Seed:              7,
		}
	}

	fmt.Printf("%10s %22s %22s\n", "stragglers", "drop (FedAvg-style)", "aggregate (FedProx)")
	for _, frac := range []float64{0, 0.5, 0.9} {
		losses := make([]float64, 2)
		for i, policy := range []core.StragglerPolicy{core.DropStragglers, core.AggregatePartial} {
			hist, err := core.Run(mdl, fed, base(policy, frac))
			if err != nil {
				log.Fatal(err)
			}
			losses[i] = hist.Final().TrainLoss
		}
		fmt.Printf("%9.0f%% %22.4f %22.4f\n", frac*100, losses[0], losses[1])
	}
	// Variable local work: instead of designating stragglers, give every
	// device a compute budget (a tiered hardware fleet) enforced by the
	// DEVICE runtime — the server can't drop what it doesn't know, so the
	// only policy is FedProx's: aggregate the partial solutions. The row
	// reports the realized work next to the loss.
	budgeted := base(core.AggregatePartial, 0)
	budgeted.Mu = 1
	budgeted.DeviceBudget = syshet.NewFleet(syshet.Config{
		Deadline:  syshet.DeadlineFor(10, fed.Shards[0].NumSamples(), 10, 10),
		JitterStd: 0.3,
		BatchSize: 10,
		Seed:      21,
	}, fed.TrainSizes())
	hist, err := core.Run(mdl, fed, budgeted)
	if err != nil {
		log.Fatal(err)
	}
	fin := hist.Final()
	fmt.Printf("%10s %22s %22.4f   (devices ran %.1f of %d epochs, %.0f%% partial)\n",
		"budgeted", "-", fin.TrainLoss, fin.MeanEpochsDone, budgeted.LocalEpochs, 100*fin.PartialFraction)
	fmt.Println("\nlower is better; the gap should widen with the straggler fraction")

	// Virtual-time sweep: the same network with a 10x-slow 10% device
	// tail on the internal/vtime clock. Sync pays the tail at every
	// round barrier; async and buffered fold fast replies immediately.
	model := vtime.MustModel(
		vtime.UniformCompute{SecondsPerEpoch: 0.05, Speed: vtime.SlowTail(fed.NumDevices(), 0.1, 10)},
		vtime.Net{UplinkBps: 1e6, DownlinkBps: 4e6, Latency: 0.02, JitterStd: 0.1},
		11,
	)
	cases := []struct {
		name string
		mode core.AggregationMode
	}{
		{"sync (round barrier)", core.SyncRounds},
		{"async (fold on arrival)", core.AsyncTotal},
		{"buffered (flush per K)", core.Buffered},
	}
	fmt.Printf("\nvirtual-time sweep: 10%% of devices 10x slower, equal device work\n")
	fmt.Printf("%-26s %12s %12s %10s\n", "discipline", "virtual-s", "final-loss", "speedup")
	var syncVT float64
	for _, tc := range cases {
		cfg := base(core.AggregatePartial, 0.5)
		cfg.Mu = 1
		cfg.VTime = core.VTimeConfig{Model: model}
		if tc.mode != core.SyncRounds {
			cfg.Async = core.AsyncConfig{Mode: tc.mode}
		}
		hist, err := core.Run(mdl, fed, cfg)
		if err != nil {
			log.Fatal(err)
		}
		vt := hist.VirtualDuration()
		if tc.mode == core.SyncRounds {
			syncVT = vt
		}
		fmt.Printf("%-26s %12.1f %12.4f %9.1fx\n", tc.name, vt, hist.Final().TrainLoss, syncVT/vt)
	}
	fmt.Println("\nasync completes the same device work in a fraction of sync's virtual time;")
	fmt.Println("rerun this program — every number above reproduces exactly")
}
