// Stragglers: sweep systems heterogeneity on the MNIST surrogate and
// compare the two straggler policies — dropping (FedAvg) versus
// aggregating partial solutions (FedProx) — at each level.
//
// This reproduces the mechanism behind Figure 1's columns: as the
// straggler fraction grows, dropping starves the server of updates while
// aggregation keeps every selected device contributing.
//
//	go run ./examples/stragglers
package main

import (
	"fmt"
	"log"

	"fedprox/internal/core"
	"fedprox/internal/data/mnistsim"
	"fedprox/internal/model/linear"
)

func main() {
	fed := mnistsim.GenerateScaled(0.05) // 50 devices, 2 digits each
	mdl := linear.ForDataset(fed)
	fmt.Printf("dataset: %s — %d devices, %d samples, 2 digits per device\n\n",
		fed.Name, fed.NumDevices(), fed.TotalSamples())

	fmt.Printf("%10s %22s %22s\n", "stragglers", "drop (FedAvg-style)", "aggregate (FedProx)")
	for _, frac := range []float64{0, 0.5, 0.9} {
		losses := make([]float64, 2)
		for i, policy := range []core.StragglerPolicy{core.DropStragglers, core.AggregatePartial} {
			cfg := core.Config{
				Rounds:            40,
				ClientsPerRound:   10,
				LocalEpochs:       20,
				LearningRate:      0.03,
				BatchSize:         10,
				Straggler:         policy,
				StragglerFraction: frac,
				EvalEvery:         40,
				Seed:              7,
			}
			hist, err := core.Run(mdl, fed, cfg)
			if err != nil {
				log.Fatal(err)
			}
			losses[i] = hist.Final().TrainLoss
		}
		fmt.Printf("%9.0f%% %22.4f %22.4f\n", frac*100, losses[0], losses[1])
	}
	fmt.Println("\nlower is better; the gap should widen with the straggler fraction")
}
