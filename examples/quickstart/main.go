// Quickstart: train FedProx and FedAvg on the paper's Synthetic(1,1)
// dataset under systems heterogeneity and compare their convergence.
//
// This is the minimal end-to-end use of the library: generate a federated
// dataset, pick a model, configure the two algorithms, run them in the
// identical simulated environment, and print the trajectories.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fedprox/internal/core"
	"fedprox/internal/data/synthetic"
	"fedprox/internal/model/linear"
)

func main() {
	// Synthetic(1,1): highly heterogeneous — each device has its own label
	// model and its own input distribution. Scaled down 4x for a fast demo.
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.25))
	mdl := linear.ForDataset(fed)

	fmt.Printf("dataset: %s — %d devices, %d samples\n",
		fed.Name, fed.NumDevices(), fed.TotalSamples())

	// 90% of the 10 selected devices per round are stragglers that finish
	// only a random fraction of their 20 local epochs.
	fedavg := core.FedAvg(60, 10, 20, 0.01)
	fedavg.StragglerFraction = 0.9
	fedavg.EvalEvery = 10

	fedprox := core.FedProx(60, 10, 20, 0.01, 1) // mu = 1, the paper's best
	fedprox.StragglerFraction = 0.9
	fedprox.EvalEvery = 10

	for _, cfg := range []core.Config{fedavg, fedprox} {
		hist, err := core.Run(mdl, fed, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fmt.Print(hist)
	}

	fmt.Println("\nFedAvg drops the stragglers; FedProx aggregates their")
	fmt.Println("partial work and regularizes with the proximal term — it")
	fmt.Println("should reach a visibly lower loss at the same round budget.")
}
