// Hierarchy: run the same federated workload flat and through a 2-tier
// aggregation tree (edge aggregators folding device replies before the
// root) and compare what the tree buys. Every run contacts the same
// 32-device cohort per round over the same fleet with the same seed;
// the tiered runs differ only in where replies are folded, so the
// table isolates the topology's effect: root ingress shrinks roughly
// F-fold at equal device count while the extra backbone hop costs
// almost no virtual time, and with fan-out 1 the tree degenerates to
// the flat run bit for bit.
//
//	go run ./examples/hierarchy
package main

import (
	"fmt"
	"log"

	"fedprox/internal/core"
	"fedprox/internal/data/synthetic"
	"fedprox/internal/model/linear"
	"fedprox/internal/tier"
	"fedprox/internal/vtime"
)

func main() {
	sc := synthetic.Config{
		Alpha: 1, Beta: 1,
		Devices:    2048,
		Dim:        10,
		Classes:    5,
		MinSamples: 10,
		MaxSamples: 20,
		PowerAlpha: 1.55,
		TrainFrac:  0.8,
		Seed:       18,
	}
	fl := synthetic.NewFleet(sc)
	mdl := linear.New(sc.Dim, sc.Classes)
	fmt.Printf("dataset: synthetic(1,1) — %d devices, non-IID\n\n", fl.NumDevices())

	// Device legs ride the access network with a 10x-slow 10% tail; the
	// aggregator legs between tiers ride a faster, steadier backbone.
	deviceLegs := vtime.MustModel(
		vtime.UniformCompute{SecondsPerEpoch: 0.05, Speed: vtime.SlowTail(sc.Devices, 0.1, 10)},
		vtime.Net{UplinkBps: 1e6, DownlinkBps: 4e6, Latency: 0.02, JitterStd: 0.1},
		101,
	)
	backbone := vtime.MustModel(
		vtime.UniformCompute{},
		vtime.Net{UplinkBps: 2e7, DownlinkBps: 2e7, Latency: 0.005, JitterStd: 0.05},
		211,
	)

	cfg := core.FedProx(20, 32, 5, 0.01, 1)
	cfg.EvalEvery = 20
	cfg.Seed = 7
	cfg.VTime = core.VTimeConfig{Model: deviceLegs}

	fmt.Printf("%-11s %8s %14s %12s %12s\n", "topology", "edges", "root ingress", "virtual-s", "final loss")
	var flatLoss float64
	for _, fan := range []int{1, 8, 32} {
		topo := tier.Topology{FanOut: fan, Depth: 1, Model: backbone}
		hist, err := core.RunTiered(mdl, fl, cfg, topo)
		if err != nil {
			log.Fatal(err)
		}
		fin := hist.Final()
		name, edges := "flat", "-"
		if fan > 1 {
			name = fmt.Sprintf("2-tier f=%d", fan)
			edges = fmt.Sprintf("%d", cfg.ClientsPerRound/fan)
		}
		fmt.Printf("%-11s %8s %12.1fKB %12.1f %12.4f\n",
			name, edges, float64(fin.Cost.UplinkBytes)/1024, fin.VirtualSeconds, fin.TrainLoss)
		if fan == 1 {
			flatLoss = fin.TrainLoss
		} else if fin.TrainLoss > 1.05*flatLoss {
			log.Fatalf("tiered loss %.4f drifted above flat %.4f", fin.TrainLoss, flatLoss)
		}
	}
	fmt.Println("\nfan-out 1 runs the identical flat schedule (bit-for-bit parity with")
	fmt.Println("core.Run); larger fan-outs fold replies at the edges, so the root")
	fmt.Println("ingests one reply per edge instead of one per device.")
}
