// Distributed: run FedProx over real TCP connections in one process — a
// coordinator goroutine that owns only the global model, and three worker
// goroutines that own the data, exactly the trust boundary of a real
// federated deployment. The same binary layout works across machines via
// cmd/fedserver and cmd/fedworker.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	"fedprox/internal/core"
	"fedprox/internal/data"
	"fedprox/internal/data/synthetic"
	"fedprox/internal/fednet"
	"fedprox/internal/model/linear"
)

func main() {
	fed := synthetic.Generate(synthetic.Default(1, 1).Scaled(0.25))
	mdl := linear.ForDataset(fed)

	cfg := core.FedProx(30, 10, 20, 0.01, 1)
	cfg.StragglerFraction = 0.5
	cfg.EvalEvery = 10

	srv, err := fednet.NewServer(mdl, fednet.ServerConfig{
		Training:      cfg,
		ExpectDevices: fed.NumDevices(),
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coordinator on %s; 3 workers hosting %d devices\n\n", ln.Addr(), fed.NumDevices())

	const workers = 3
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		var shards []*data.Shard
		for k := wi; k < fed.NumDevices(); k += workers {
			shards = append(shards, fed.Shards[k])
		}
		w := fednet.NewWorker(mdl, shards, nil)
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			if err := w.Run(ln.Addr().String()); err != nil {
				log.Printf("worker %d: %v", wi, err)
			}
		}(wi)
	}

	hist, err := srv.RunWithListener(ln)
	if err != nil {
		log.Fatal(err)
	}
	wg.Wait()
	fmt.Print(hist)

	// The trajectory is bit-identical to the in-memory simulator's under
	// the same seed — verify live.
	sim, err := core.Run(mdl, fed, cfg)
	if err != nil {
		log.Fatal(err)
	}
	match := sim.Final().TrainLoss == hist.Final().TrainLoss
	fmt.Printf("\nsimulator final loss %.10f, distributed final loss %.10f, bit-identical: %v\n",
		sim.Final().TrainLoss, hist.Final().TrainLoss, match)
}
